type severity = Error | Warning | Hint

type span = {
  start_line : int;
  end_line : int;
  start_col : int;
  end_col : int option;
}

type edit = Remove_line of int

type t = {
  code : string;
  severity : severity;
  file : string option;
  span : span option;
  message : string;
  fix : string option;
  edit : edit option;
}

let make ?file ?line ?end_line ?col ?end_col ?fix ?edit ~code ~severity message
    =
  let span =
    match line with
    | None -> None
    | Some l ->
        Some
          {
            start_line = l;
            end_line = Option.value end_line ~default:l;
            start_col = Option.value col ~default:1;
            end_col;
          }
  in
  { code; severity; file; span; message; fix; edit }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2
let is_error d = d.severity = Error

let compare a b =
  let line d = match d.span with Some s -> s.start_line | None -> max_int in
  let c = Option.compare String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare (line a) (line b) in
    if c <> 0 then c
    else
      let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c else String.compare a.message b.message

let count ds =
  List.fold_left
    (fun (e, w, h) d ->
      match d.severity with
      | Error -> (e + 1, w, h)
      | Warning -> (e, w + 1, h)
      | Hint -> (e, w, h + 1))
    (0, 0, 0) ds

let summary ds =
  let e, w, h = count ds in
  let plural n word = Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s") in
  Printf.sprintf "%s, %s, %s" (plural e "error") (plural w "warning")
    (plural h "hint")

let pp ppf d =
  (match (d.file, d.span) with
  | Some f, Some s -> Format.fprintf ppf "%s:%d: " f s.start_line
  | Some f, None -> Format.fprintf ppf "%s: " f
  | None, Some s -> Format.fprintf ppf "line %d: " s.start_line
  | None, None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_label d.severity) d.code d.message

let to_string d = Format.asprintf "%a" pp d

let pp_fix ppf d =
  match d.fix with
  | None -> ()
  | Some f -> Format.fprintf ppf "  fix: %s" f

(* --- JSON --- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_opt_string = function
  | None -> "null"
  | Some s -> Printf.sprintf "\"%s\"" (json_escape s)

let to_json d =
  Printf.sprintf
    "{\"code\": \"%s\", \"severity\": \"%s\", \"file\": %s, \"line\": %s, \
     \"end_line\": %s, \"message\": \"%s\", \"fix\": %s}"
    (json_escape d.code)
    (severity_label d.severity)
    (json_opt_string d.file)
    (match d.span with Some s -> string_of_int s.start_line | None -> "null")
    (match d.span with Some s -> string_of_int s.end_line | None -> "null")
    (json_escape d.message) (json_opt_string d.fix)

let report_json ds =
  let e, w, h = count ds in
  Printf.sprintf
    "{\n\
    \  \"diagnostics\": [%s%s],\n\
    \  \"errors\": %d,\n\
    \  \"warnings\": %d,\n\
    \  \"hints\": %d\n\
     }\n"
    (if ds = [] then ""
     else "\n    " ^ String.concat ",\n    " (List.map to_json ds))
    (if ds = [] then "" else "\n  ")
    e w h

(* --- SARIF 2.1.0 --- *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "note"

let report_sarif ~rules ds =
  (* only rules that actually fired are listed, in code order *)
  let fired =
    List.sort_uniq String.compare (List.map (fun d -> d.code) ds)
  in
  let rule_json code =
    let descr =
      match List.assoc_opt code rules with
      | Some d ->
          Printf.sprintf ", \"shortDescription\": {\"text\": \"%s\"}"
            (json_escape d)
      | None -> ""
    in
    Printf.sprintf "{\"id\": \"%s\"%s}" (json_escape code) descr
  in
  let result_json d =
    let message =
      match d.fix with
      | None -> d.message
      | Some f -> d.message ^ " — fix: " ^ f
    in
    let location =
      match d.file with
      | None -> ""
      | Some file ->
          let region =
            match d.span with
            | Some s when s.start_line >= 1 ->
                Printf.sprintf
                  ", \"region\": {\"startLine\": %d, \"startColumn\": %d, \
                   \"endLine\": %d%s}"
                  s.start_line s.start_col s.end_line
                  (match s.end_col with
                  | Some c -> Printf.sprintf ", \"endColumn\": %d" c
                  | None -> "")
            | _ -> ""
          in
          Printf.sprintf
            ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
             {\"uri\": \"%s\"}%s}}]"
            (json_escape file) region
    in
    Printf.sprintf
      "{\"ruleId\": \"%s\", \"level\": \"%s\", \"message\": {\"text\": \
       \"%s\"}%s}"
      (json_escape d.code) (sarif_level d.severity) (json_escape message)
      location
  in
  Printf.sprintf
    "{\n\
    \  \"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"rlcheck\",\n\
    \          \"informationUri\": \
     \"https://example.org/relcheck\",\n\
    \          \"rules\": [%s]\n\
    \        }\n\
    \      },\n\
    \      \"results\": [%s%s]\n\
    \    }\n\
    \  ]\n\
     }\n"
    (String.concat ", " (List.map rule_json fired))
    (if ds = [] then ""
     else "\n        " ^ String.concat ",\n        " (List.map result_json ds))
    (if ds = [] then "" else "\n      ")
