(** Lint baselines: suppress known findings, fail only on new ones.

    A baseline file records the findings a project has accepted (or not
    yet fixed) so CI gates only on {e new} diagnostics. The format is
    deliberately plain text — one fingerprint per line after a versioned
    header — so baselines diff cleanly and can be audited by eye:

    {v
    # rlcheck lint baseline v1
    RL202	fig3.ts	2 transitions leave states that lie on no cycle: ...
    v}

    A fingerprint is [code TAB file TAB message] (control characters
    escaped, file ["-"] when absent). Line numbers are deliberately {e
    excluded}: edits elsewhere in the file must not churn the baseline. *)

(** [fingerprint d] is [d]'s one-line identity in a baseline —
    [code TAB file TAB message], line numbers excluded. *)
val fingerprint : Diagnostic.t -> string

(** [render ds] is the baseline file content recording [ds]. Fingerprints
    are sorted and deduplicated. *)
val render : Diagnostic.t list -> string

(** [parse src] is the fingerprint set of a baseline file, or [Error] on
    a missing/unknown header. Blank lines and [#] comments are ignored. *)
val parse : string -> (string list, string) result

(** [filter ~baseline ds] splits [ds] into (new findings, suppressed
    count): a diagnostic is suppressed when its fingerprint is in
    [baseline]. *)
val filter : baseline:string list -> Diagnostic.t list -> Diagnostic.t list * int
