(** Monotone-fixpoint dataflow over CSR transition tables.

    The RL5xx semantic passes all reduce to the same engine: one bitset of
    [width] facts per state, joined by union (facts only grow), with a
    per-edge monotone transfer, iterated to the least fixpoint by a
    worklist. Edges come from the canonical {!Rl_prelude.Csr} table of an
    automaton; [Backward] problems run the same engine on the transposed
    table, so "what can this state reach" and "what reaches this state"
    are the same ten lines of solver. *)

module Csr := Rl_prelude.Csr
module Bitset := Rl_prelude.Bitset

type direction =
  | Forward  (** facts flow along edges, source to target *)
  | Backward  (** facts flow against edges (runs on {!Csr.transpose}) *)

(** A monotone problem over a [width]-bit fact domain. [init q facts]
    seeds state [q]'s fact set. [transfer src sym dst in_ out] contributes
    facts for the edge [src --sym--> dst] by adding to [out] (cleared
    before each call); [in_] is the current fact set of [src] and must not
    be mutated. Under [Backward], [src]/[dst] are in the orientation of
    the {e transposed} graph: [src] is the original edge's target.
    Monotonicity ([out] grows when [in_] grows) is the caller's
    obligation; it is what makes the fixpoint least and the iteration
    terminating. *)
type problem = {
  width : int;
  init : int -> Bitset.t -> unit;
  transfer : int -> int -> int -> Bitset.t -> Bitset.t -> unit;
}

(** [solve ?direction csr p] iterates [p] to its least fixpoint and
    returns the per-state fact sets. [direction] defaults to [Forward]. *)
val solve : ?direction:direction -> Csr.t -> problem -> Bitset.t array

(** {2 Canned analyses}

    The two 1-bit instances every pass starts from. *)

(** [reachable csr ~init] is the set of states reachable from [init] —
    the forward gen/propagate instance. Agrees with
    [Rl_automata.Nfa.reachable] on an automaton's own table (qcheck-pinned
    in the test suite). *)
val reachable : Csr.t -> init:int list -> Bitset.t

(** [coreachable csr ~targets] is the set of states from which some state
    of [targets] is reachable — the same instance run [Backward]. *)
val coreachable : Csr.t -> targets:int list -> Bitset.t
