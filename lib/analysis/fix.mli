(** Applying machine-applicable lint fixes to model sources.

    [rlcheck lint --fix] is the consumer: it plans the edits carried by a
    report's diagnostics ({!Diagnostic.edit}), applies them to the raw
    [.ts] source text, and rewrites the file. Application is pure text
    surgery — no reparse, no reprint — so user formatting and comments on
    untouched lines survive, and a fixed file re-lints to a report with no
    further machine-applicable edits (idempotence, qcheck-pinned in the
    test suite). *)

(** [plan ds] extracts the edits of the machine-applicable diagnostics,
    deduplicates identical ones, and refuses conflicting distinct edits
    on the same line: [Error msg] names the first conflicting line.
    The result is sorted by line. *)
val plan : Diagnostic.t list -> (Diagnostic.edit list, string) result

(** [apply ~src edits] applies [edits] to the source text. Line numbers
    are 1-based into [src]'s lines; edits past the last line are ignored.
    A trailing newline is preserved. *)
val apply : src:string -> Diagnostic.edit list -> string
