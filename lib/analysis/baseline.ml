let header = "# rlcheck lint baseline v1"

(* tabs and newlines are the format's structure; escape them (and other
   control characters) out of the free-text message *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fingerprint d =
  Printf.sprintf "%s\t%s\t%s" d.Diagnostic.code
    (escape (Option.value d.Diagnostic.file ~default:"-"))
    (escape d.Diagnostic.message)

let render ds =
  let fps = List.sort_uniq String.compare (List.map fingerprint ds) in
  String.concat "\n" ((header :: fps) @ [ "" ])

let parse src =
  match String.split_on_char '\n' src with
  | first :: rest when String.trim first = header ->
      Ok
        (List.filter
           (fun l ->
             let l = String.trim l in
             l <> "" && l.[0] <> '#')
           rest)
  | _ ->
      Error
        (Printf.sprintf "not a lint baseline (expected a '%s' header line)"
           header)

let filter ~baseline ds =
  let keep, drop =
    List.partition (fun d -> not (List.mem (fingerprint d) baseline)) ds
  in
  (keep, List.length drop)
