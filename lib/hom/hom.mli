(** Abstracting homomorphisms (Definition 6.1) and the simplicity check
    (Definition 6.3).

    An abstracting homomorphism [h : Σ → Σ' ∪ {ε}] renames each concrete
    action to an abstract one or hides it. It extends letterwise to words,
    and to ω-words where the image remains infinite. Behavior abstraction
    (Definition 6.2) replaces a system with behaviors [lim(L)] by the
    abstract system [lim(h(L))].

    Whether relative liveness verdicts transfer back from the abstract
    system hinges on [h] being {e simple} on [L] (Ochsenschläger): for
    every [w ∈ L] there must be a continuation [u] of [h(w)] in [h(L)]
    after which the abstract continuations coincide with the images of the
    concrete ones — [cont(u, cont(h(w), h(L))) = cont(u, h(cont(w, L)))].
    [is_simple] decides this for prefix-closed regular [L]. *)

open Rl_sigma
open Rl_automata

type t

(** {1 Construction} *)

(** [create ~concrete ~abstract mapping] builds [h] from a name mapping:
    [(concrete_name, Some abstract_name)] renames, [(name, None)] hides.
    Every concrete symbol must be mapped exactly once.
    @raise Invalid_argument otherwise. *)
val create :
  concrete:Alphabet.t -> abstract:Alphabet.t -> (string * string option) list -> t

(** [hiding ~concrete ~keep] is the homomorphism onto the sub-alphabet
    [keep] (fresh abstract alphabet of exactly those names) that hides
    every other symbol — the paper's "only interested in the actions
    request, result, reject" abstraction. *)
val hiding : concrete:Alphabet.t -> keep:string list -> t

(** {1 Accessors} *)

val concrete : t -> Alphabet.t
val abstract : t -> Alphabet.t

(** [apply_symbol h a] is [h(a)] ([None] = hidden). *)
val apply_symbol : t -> Alphabet.symbol -> Alphabet.symbol option

(** {1 Application} *)

(** [apply_word h w] is [h(w)]. *)
val apply_word : t -> Word.t -> Word.t

(** [apply_lasso h x] is [Ok (h x)] when defined (Definition 6.1:
    [lim(h(pre x)) ≠ ∅]), otherwise [Error w] with the finite image. *)
val apply_lasso : t -> Lasso.t -> (Lasso.t, Word.t) result

(** [image h n] recognizes [h(L(n))] (direct image; hidden letters become
    ε-moves, which are then eliminated). *)
val image : t -> Nfa.t -> Nfa.t

(** [image_ts h n] — the image of a transition system, re-normalized to the
    all-states-final trim shape (valid because the image of a prefix-closed
    language is prefix-closed). *)
val image_ts : t -> Nfa.t -> Nfa.t

(** [preimage h d] is a DFA for [h⁻¹(L(d))] over the concrete alphabet. *)
val preimage : t -> Dfa.t -> Dfa.t

(** {1 Maximal words (Section 8)} *)

(** [has_maximal_words ?budget n] — some word of [L(n)] is not a proper
    prefix of another word of [L(n)]. Theorems 8.2/8.3 require [h(L)] to
    have none. *)
val has_maximal_words : ?budget:Rl_engine_kernel.Budget.t -> Nfa.t -> bool

(** [hash_extend ~hash n] recognizes [L(n) ∪ {w·#^k | w maximal in L(n)}]
    over the alphabet extended with the fresh symbol named [hash]
    (default ["#"]) — the remedy of Section 8's closing remark, after
    which no maximal words remain. *)
val hash_extend : ?hash:string -> Nfa.t -> Nfa.t

(** {1 Simplicity (Definition 6.3)} *)

(** The simplicity analysis examines every reachable "configuration" of a
    word [w ∈ L]: the set of states [w] may reach in the transition system
    (determining [cont(w, L)]) together with the state [h(w)] reaches in
    the DFA of [h(L)] (determining [cont(h(w), h(L))]). Simplicity must
    hold at each configuration; [u] witnesses it. *)
type verdict = {
  simple : bool;
  configurations : int;  (** reachable [(S, T)] configurations examined *)
  witness : Word.t option;
      (** a shortest [w ∈ L] at which simplicity fails (when not simple) *)
}

(** [is_simple h l] decides simplicity of [h] for the prefix-closed
    language of the transition system [l] (all-states-final NFA).
    @raise Invalid_argument if [l] is not all-states-final. *)
val is_simple : t -> Nfa.t -> bool

(** [analyze ?budget h l] is the full verdict, with a failing word when not
    simple. [budget] is ticked once per examined configuration and spent in
    the inner determinizations. *)
val analyze : ?budget:Rl_engine_kernel.Budget.t -> t -> Nfa.t -> verdict

(** [simple_at h l w] decides Definition 6.3 at one word: whether some
    [u ∈ cont(h w, h L)] equalizes the abstract and image continuations.
    Exposed for cross-validation in tests. *)
val simple_at : t -> Nfa.t -> Word.t -> bool

val pp : Format.formatter -> t -> unit
