open Rl_prelude
open Rl_sigma
open Rl_automata

type t = {
  concrete : Alphabet.t;
  abstract : Alphabet.t;
  map : int option array; (* concrete symbol -> abstract symbol or ε *)
}

let create ~concrete ~abstract mapping =
  let map = Array.make (Alphabet.size concrete) None in
  let seen = Array.make (Alphabet.size concrete) false in
  List.iter
    (fun (cname, target) ->
      let c =
        match Alphabet.symbol_opt concrete cname with
        | Some c -> c
        | None ->
            invalid_arg (Printf.sprintf "Hom.create: unknown concrete symbol %S" cname)
      in
      if seen.(c) then
        invalid_arg (Printf.sprintf "Hom.create: %S mapped twice" cname);
      seen.(c) <- true;
      map.(c) <-
        (match target with
        | None -> None
        | Some aname -> (
            match Alphabet.symbol_opt abstract aname with
            | Some a -> Some a
            | None ->
                invalid_arg
                  (Printf.sprintf "Hom.create: unknown abstract symbol %S" aname))))
    mapping;
  if not (Array.for_all Fun.id seen) then
    invalid_arg "Hom.create: some concrete symbol left unmapped";
  { concrete; abstract; map }

let hiding ~concrete ~keep =
  let abstract = Alphabet.make keep in
  let mapping =
    List.map
      (fun name -> (name, if List.mem name keep then Some name else None))
      (Alphabet.names concrete)
  in
  create ~concrete ~abstract mapping

let concrete h = h.concrete
let abstract h = h.abstract
let apply_symbol h a = h.map.(a)

let apply_word h w =
  Word.of_list (List.filter_map (fun a -> h.map.(a)) (Word.to_list w))

let apply_lasso h x = Lasso.map (fun a -> h.map.(a)) x

let image h n = Nfa.remove_eps (Nfa.map_symbols ~alphabet:h.abstract (fun a -> h.map.(a)) n)
let image_ts h n = Nfa.trim (image h n)

let preimage h d =
  let k = Alphabet.size h.concrete in
  let delta =
    Array.init (Dfa.states d) (fun q ->
        Array.init k (fun a ->
            match h.map.(a) with None -> q | Some b -> Dfa.step d q b))
  in
  let finals = List.filter (Dfa.is_final d) (List.init (Dfa.states d) Fun.id) in
  Dfa.create ~alphabet:h.concrete ~states:(Dfa.states d) ~initial:(Dfa.initial d)
    ~finals ~delta

(* --- maximal words --- *)

(* In the complete DFA of L, a reachable accepting state with no non-empty
   path back to an accepting state witnesses a maximal word. *)
let maximal_states d =
  let n = Dfa.states d in
  let k = Alphabet.size (Dfa.alphabet d) in
  (* extendable.(q): some non-empty path from q reaches an accepting state *)
  let extendable = Array.make n false in
  let pred = Array.make n [] in
  for q = 0 to n - 1 do
    for a = 0 to k - 1 do
      pred.(Dfa.step d q a) <- q :: pred.(Dfa.step d q a)
    done
  done;
  let stack = ref [] in
  for q = 0 to n - 1 do
    if Dfa.is_final d q then
      List.iter
        (fun p ->
          if not extendable.(p) then begin
            extendable.(p) <- true;
            stack := p :: !stack
          end)
        pred.(q)
  done;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not extendable.(p) then begin
              extendable.(p) <- true;
              stack := p :: !stack
            end)
          pred.(q)
  done;
  let reach = Bitset.create n in
  let bfs = Queue.create () in
  Bitset.add reach (Dfa.initial d);
  Queue.add (Dfa.initial d) bfs;
  while not (Queue.is_empty bfs) do
    let q = Queue.pop bfs in
    for a = 0 to k - 1 do
      let q' = Dfa.step d q a in
      if not (Bitset.mem reach q') then begin
        Bitset.add reach q';
        Queue.add q' bfs
      end
    done
  done;
  List.filter
    (fun q -> Bitset.mem reach q && Dfa.is_final d q && not extendable.(q))
    (List.init n Fun.id)

let has_maximal_words ?budget n = maximal_states (Dfa.determinize ?budget n) <> []

let hash_extend ?(hash = "#") n =
  let d = Dfa.determinize n in
  let maximal = maximal_states d in
  let old_alpha = Dfa.alphabet d in
  if Alphabet.mem_name old_alpha hash then
    invalid_arg "Hom.hash_extend: hash symbol already in alphabet";
  let alphabet = Alphabet.make (Alphabet.names old_alpha @ [ hash ]) in
  let hsym = Alphabet.symbol alphabet hash in
  let transitions = ref [] in
  for q = 0 to Dfa.states d - 1 do
    for a = 0 to Alphabet.size old_alpha - 1 do
      transitions := (q, a, Dfa.step d q a) :: !transitions
    done
  done;
  List.iter (fun q -> transitions := (q, hsym, q) :: !transitions) maximal;
  let finals = List.filter (Dfa.is_final d) (List.init (Dfa.states d) Fun.id) in
  Nfa.trim
    (Nfa.create ~alphabet ~states:(Dfa.states d) ~initial:[ Dfa.initial d ]
       ~finals ~transitions:!transitions ())

(* --- simplicity --- *)

type verdict = { simple : bool; configurations : int; witness : Word.t option }

module Config_key = struct
  type t = Bitset.t * int

  let equal (s1, t1) (s2, t2) = t1 = t2 && Bitset.equal s1 s2
  let hash (s, t) = (Bitset.hash s * 31) + t
end

module Config_tbl = Hashtbl.Make (Config_key)

let check_ts l =
  if Nfa.has_eps l then invalid_arg "Hom: transition system has ε-moves";
  if not (Nfa.all_states_final l) then
    invalid_arg "Hom: transition system must have all states final"

(* Decide Definition 6.3 at one configuration: S = possible states of the
   transition system after w, big = DFA of h(L), t0 = its state after h(w).
   Simplicity at (S, t0) asks for a reachable product state (t, y) with
   t accepting in big (so that u ∈ cont(h w, h L)) whose residual languages
   agree. Residual equality is precomputed by minimizing the disjoint
   union of the two DFAs ([Dfa.equivalence_classes]). *)
let config_ok ~big ~classes_big ~y_dfa ~classes_y t0 =
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  let k = Alphabet.size (Dfa.alphabet big) in
  let start = (t0, Dfa.initial y_dfa) in
  Hashtbl.add seen start ();
  Queue.add start queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let t, y = Queue.pop queue in
    if Dfa.is_final big t && classes_big.(t) = classes_y.(y) then found := true
    else
      for a = 0 to k - 1 do
        let pair' = (Dfa.step big t a, Dfa.step y_dfa y a) in
        if not (Hashtbl.mem seen pair') then begin
          Hashtbl.add seen pair' ();
          Queue.add pair' queue
        end
      done
  done;
  !found

let analyze ?(budget = Rl_engine_kernel.Budget.unlimited) h l =
  check_ts l;
  let l = Nfa.trim l in
  if Nfa.states l = 0 then { simple = true; configurations = 0; witness = None }
  else begin
    let big = Dfa.determinize ~budget (image h l) in
    let nl = Nfa.states l in
    (* memoized per-S data: DFA of h(cont_S) and equivalence classes
       against [big] *)
    let y_cache : (Bitset.t, Dfa.t * int array * int array) Hashtbl.t =
      Hashtbl.create 16
    in
    let y_data s =
      match Hashtbl.find_opt y_cache s with
      | Some d -> d
      | None ->
          let from_s =
            Nfa.create ~alphabet:(Nfa.alphabet l) ~states:nl
              ~initial:(Bitset.elements s)
              ~finals:(List.init nl Fun.id)
              ~transitions:(Nfa.transitions l) ()
          in
          let y_dfa = Dfa.determinize ~budget (image h from_s) in
          let classes_big, classes_y = Dfa.equivalence_classes big y_dfa in
          let data = (y_dfa, classes_big, classes_y) in
          Hashtbl.add y_cache (Bitset.copy s) data;
          data
    in
    (* BFS over configurations (S, T), tracking access words for
       counterexamples. *)
    let seen = Config_tbl.create 64 in
    let queue = Queue.create () in
    let s0 = Bitset.of_list nl (Nfa.initial l) in
    let start = (s0, Dfa.initial big) in
    Config_tbl.add seen start ();
    Queue.add (start, []) queue;
    let k = Alphabet.size (Nfa.alphabet l) in
    let count = ref 0 in
    let failure = ref None in
    while !failure = None && not (Queue.is_empty queue) do
      let (s, t), rpath = Queue.pop queue in
      Rl_engine_kernel.Budget.tick budget;
      incr count;
      let y_dfa, classes_big, classes_y = y_data s in
      if not (config_ok ~big ~classes_big ~y_dfa ~classes_y t) then
        failure := Some (Word.of_list (List.rev rpath))
      else
        for a = 0 to k - 1 do
          let s' = Bitset.create nl in
          Bitset.iter
            (fun q -> List.iter (Bitset.add s') (Nfa.successors l q a))
            s;
          if not (Bitset.is_empty s') then begin
            let t' =
              match h.map.(a) with None -> t | Some b -> Dfa.step big t b
            in
            let cfg = (s', t') in
            if not (Config_tbl.mem seen cfg) then begin
              Config_tbl.add seen cfg ();
              Queue.add (cfg, a :: rpath) queue
            end
          end
        done
    done;
    match !failure with
    | Some w -> { simple = false; configurations = !count; witness = Some w }
    | None -> { simple = true; configurations = !count; witness = None }
  end

let is_simple h l = (analyze h l).simple

let simple_at h l w =
  check_ts l;
  let l = Nfa.trim l in
  let nl = Nfa.states l in
  let s =
    List.fold_left
      (fun s a ->
        let s' = Bitset.create nl in
        Bitset.iter (fun q -> List.iter (Bitset.add s') (Nfa.successors l q a)) s;
        s')
      (Bitset.of_list nl (Nfa.initial l))
      (Word.to_list w)
  in
  if Bitset.is_empty s then invalid_arg "Hom.simple_at: word not in L";
  let big = Dfa.determinize (image h l) in
  let t = Dfa.run big (apply_word h w) in
  let from_s =
    Nfa.create ~alphabet:(Nfa.alphabet l) ~states:nl
      ~initial:(Bitset.elements s)
      ~finals:(List.init nl Fun.id)
      ~transitions:(Nfa.transitions l) ()
  in
  let y_dfa = Dfa.determinize (image h from_s) in
  let classes_big, classes_y = Dfa.equivalence_classes big y_dfa in
  config_ok ~big ~classes_big ~y_dfa ~classes_y t

let pp ppf h =
  Format.fprintf ppf "@[<v>h : %a → %a ∪ {ε}@," Alphabet.pp h.concrete
    Alphabet.pp h.abstract;
  Array.iteri
    (fun c target ->
      Format.fprintf ppf "  %s ↦ %s@,"
        (Alphabet.name h.concrete c)
        (match target with
        | None -> "ε"
        | Some a -> Alphabet.name h.abstract a))
    h.map;
  Format.fprintf ppf "@]"
