open Rl_sigma
open Rl_automata

type marking = int array

type transition = {
  label : string;
  consume : (int * int) array; (* (place, weight) *)
  produce : (int * int) array;
}

type t = {
  place_names : string array;
  place_index : (string, int) Hashtbl.t;
  transitions : transition array;
  initial : marking;
  alphabet : Alphabet.t;
  label_sym : int array; (* transition index -> alphabet symbol *)
}

let create ~places ~transitions =
  if places = [] then invalid_arg "Petri.create: no places";
  let place_names = Array.of_list (List.map fst places) in
  let place_index = Hashtbl.create 16 in
  Array.iteri
    (fun i n ->
      if Hashtbl.mem place_index n then
        invalid_arg (Printf.sprintf "Petri.create: duplicate place %S" n);
      Hashtbl.add place_index n i)
    place_names;
  let initial =
    Array.of_list
      (List.map
         (fun (n, tokens) ->
           if tokens < 0 then
             invalid_arg (Printf.sprintf "Petri.create: negative tokens in %S" n);
           tokens)
         places)
  in
  let resolve side =
    Array.of_list
      (List.map
         (fun (name, w) ->
           if w < 0 then invalid_arg "Petri.create: negative arc weight";
           match Hashtbl.find_opt place_index name with
           | Some i -> (i, w)
           | None ->
               invalid_arg (Printf.sprintf "Petri.create: unknown place %S" name))
         side)
  in
  let transitions =
    Array.of_list
      (List.map
         (fun (label, consumed, produced) ->
           { label; consume = resolve consumed; produce = resolve produced })
         transitions)
  in
  let labels =
    Array.to_list transitions
    |> List.map (fun tr -> tr.label)
    |> List.sort_uniq String.compare
  in
  if labels = [] then invalid_arg "Petri.create: no transitions";
  let alphabet = Alphabet.make labels in
  let label_sym =
    Array.map (fun tr -> Alphabet.symbol alphabet tr.label) transitions
  in
  { place_names; place_index; transitions; initial; alphabet; label_sym }

let num_places n = Array.length n.place_names
let num_transitions n = Array.length n.transitions
let place_names n = Array.to_list n.place_names
let initial_marking n = Array.copy n.initial
let alphabet n = n.alphabet

let enabled n m i =
  Array.for_all (fun (p, w) -> m.(p) >= w) n.transitions.(i).consume

let fire n m i =
  if not (enabled n m i) then invalid_arg "Petri.fire: transition not enabled";
  let m' = Array.copy m in
  Array.iter (fun (p, w) -> m'.(p) <- m'.(p) - w) n.transitions.(i).consume;
  Array.iter (fun (p, w) -> m'.(p) <- m'.(p) + w) n.transitions.(i).produce;
  m'

let enabled_transitions n m =
  List.filter (enabled n m) (List.init (num_transitions n) Fun.id)

exception Unbounded of string

let default_bound = 64

let reachability_graph ?(budget = Rl_engine_kernel.Budget.unlimited)
    ?(bound = default_bound) n =
  let table : (marking, int) Hashtbl.t = Hashtbl.create 64 in
  let rev = ref [] in
  let count = ref 0 in
  let intern m =
    match Hashtbl.find_opt table m with
    | Some id -> (id, false)
    | None ->
        Array.iteri
          (fun p tokens -> if tokens > bound then raise (Unbounded n.place_names.(p)))
          m;
        Rl_engine_kernel.Budget.tick budget;
        let id = !count in
        incr count;
        Hashtbl.add table m id;
        rev := m :: !rev;
        (id, true)
  in
  let init = initial_marking n in
  let _ = intern init in
  let queue = Queue.create () in
  Queue.add init queue;
  let edges = ref [] in
  while not (Queue.is_empty queue) do
    let m = Queue.pop queue in
    let src = Hashtbl.find table m in
    List.iter
      (fun i ->
        let m' = fire n m i in
        let dst, fresh = intern m' in
        if fresh then Queue.add m' queue;
        edges := (src, n.label_sym.(i), dst) :: !edges)
      (enabled_transitions n m)
  done;
  let nfa =
    Nfa.create ~alphabet:n.alphabet ~states:!count ~initial:[ 0 ]
      ~finals:(List.init !count Fun.id) ~transitions:!edges ()
  in
  (nfa, Array.of_list (List.rev !rev))

let is_bounded ?(bound = default_bound) n =
  match reachability_graph ~bound n with
  | _ -> true
  | exception Unbounded _ -> false

let pp_marking n ppf m =
  Format.fprintf ppf "{";
  let first = ref true in
  Array.iteri
    (fun p tokens ->
      if tokens > 0 then begin
        if not !first then Format.fprintf ppf ", ";
        first := false;
        if tokens = 1 then Format.pp_print_string ppf n.place_names.(p)
        else Format.fprintf ppf "%s:%d" n.place_names.(p) tokens
      end)
    m;
  Format.fprintf ppf "}"

let pp ppf n =
  Format.fprintf ppf "@[<v>Petri net: %d places, %d transitions@,"
    (num_places n) (num_transitions n);
  Format.fprintf ppf "  initial %a@," (pp_marking n) n.initial;
  Array.iter
    (fun tr ->
      Format.fprintf ppf "  %s: consume [%s] produce [%s]@," tr.label
        (String.concat "; "
           (Array.to_list
              (Array.map (fun (p, w) -> Printf.sprintf "%s:%d" n.place_names.(p) w) tr.consume)))
        (String.concat "; "
           (Array.to_list
              (Array.map (fun (p, w) -> Printf.sprintf "%s:%d" n.place_names.(p) w) tr.produce))))
    n.transitions;
  Format.fprintf ppf "@]"
