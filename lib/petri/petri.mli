(** Place/transition Petri nets, and their reachability graphs.

    The paper's running example (Figure 1) is a Petri net whose
    reachability graph (Figure 2) is the finite-state behavior
    representation everything else operates on. This module implements
    exactly that pipeline: nets with weighted arcs, the firing rule, and
    bounded reachability-graph construction producing a labeled transition
    system (a trim, all-states-final NFA whose language is the prefix-closed
    set of firing sequences, labeled by transition names). *)

open Rl_sigma
open Rl_automata

type t

(** A marking: tokens per place, indexed by place id. *)
type marking = int array

(** {1 Construction} *)

(** [create ~places ~transitions] builds a net.
    [places] are [(name, initial_tokens)]; [transitions] are
    [(label, consumed, produced)] where [consumed]/[produced] list
    [(place_name, weight)] pairs. Transition labels need not be unique
    (two transitions may produce the same observable action).
    @raise Invalid_argument on unknown place names, negative weights or
    negative initial tokens. *)
val create :
  places:(string * int) list ->
  transitions:(string * (string * int) list * (string * int) list) list ->
  t

(** {1 Accessors} *)

val num_places : t -> int
val num_transitions : t -> int
val place_names : t -> string list
val initial_marking : t -> marking

(** [alphabet n] is the alphabet of distinct transition labels. *)
val alphabet : t -> Alphabet.t

(** {1 Token game} *)

(** [enabled n m i] — transition [i] can fire in marking [m]. *)
val enabled : t -> marking -> int -> bool

(** [fire n m i] is the successor marking.
    @raise Invalid_argument if not enabled. *)
val fire : t -> marking -> int -> marking

(** [enabled_transitions n m] lists the indices of enabled transitions. *)
val enabled_transitions : t -> marking -> int list

(** {1 Reachability} *)

exception Unbounded of string
(** Raised (with the offending place's name) when the reachability graph
    construction exceeds its marking bound, witnessing unboundedness up to
    that bound. *)

(** The default marking bound of {!reachability_graph} ([64]). *)
val default_bound : int

(** [reachability_graph ?budget ?bound n] explores the markings reachable
    from the initial marking and returns the labeled transition system:
    states are reachable markings, edges are firings labeled with
    transition labels, every state final (the language is the prefix-closed
    set of firing sequences — the paper's [L]). [bound] (default
    {!default_bound}) caps tokens per place; exceeding it raises
    {!Unbounded}. [budget] is ticked once per explored marking.
    Also returns the marking of each state. *)
val reachability_graph :
  ?budget:Rl_engine_kernel.Budget.t -> ?bound:int -> t -> Nfa.t * marking array

(** [is_bounded ?bound n] — no reachable marking exceeds [bound] tokens in
    any place. *)
val is_bounded : ?bound:int -> t -> bool

(** {1 Output} *)

val pp : Format.formatter -> t -> unit
val pp_marking : t -> Format.formatter -> marking -> unit
