open Rl_prelude
open Rl_sigma
module Preorder = Rl_automata.Preorder

(* Direct simulation for Büchi automata, via the shared refinement engine
   in [Rl_automata.Preorder] (Henzinger-style worklist over bitset rows,
   memoized per automaton fingerprint in the kernel's Simcache). Direct
   simulation — acceptance-compatible at every step — is the variant
   whose mutual-similarity quotient preserves the ω-language. *)

let preorder b =
  let n = Buchi.states b in
  let accepting = Bitset.create (max n 1) in
  for q = 0 to n - 1 do
    if Buchi.is_accepting b q then Bitset.add accepting q
  done;
  Preorder.of_view ~delta:(Buchi.csr b) ~rdelta:(Buchi.rcsr b)
    ~tag:"buchi-fwd" ~states:n
    ~symbols:(Alphabet.size (Buchi.alphabet b))
    ~memberships:[ accepting ]
    ~succ:(fun q a -> Buchi.successors b q a)
    ()

let direct_simulation b =
  let n = Buchi.states b in
  let po = preorder b in
  (* matrix view kept for callers and tests: sim.(q).(p) iff p simulates q *)
  Array.init n (fun q ->
      let row = Preorder.simulators po q in
      Array.init n (fun p -> Bitset.mem row p))

let quotient b =
  let n = Buchi.states b in
  if n = 0 then b
  else begin
    let po = preorder b in
    let cls, count = Preorder.mutual_classes po in
    if count = n then b
    else begin
      let transitions =
        Buchi.transitions b
        |> List.map (fun (q, a, q') -> (cls.(q), a, cls.(q')))
        |> List.sort_uniq compare
      in
      let accepting =
        List.init n Fun.id
        |> List.filter_map (fun q ->
               if Buchi.is_accepting b q then Some cls.(q) else None)
        |> List.sort_uniq compare
      in
      let initial =
        List.sort_uniq compare (List.map (fun q -> cls.(q)) (Buchi.initial b))
      in
      Buchi.create ~alphabet:(Buchi.alphabet b) ~states:count ~initial
        ~accepting ~transitions ()
    end
  end
