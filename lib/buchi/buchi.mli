(** Nondeterministic Büchi automata over ω-words.

    Büchi automata represent the ω-regular data of the paper: the behavior
    set [Lω] of a system, the property [P], their intersection [Lω ∩ P], and
    the limits [lim(L)] of prefix-closed regular languages. States are
    integers [0 .. states-1]; acceptance is the standard Büchi condition
    (some accepting state visited infinitely often). *)

open Rl_sigma
open Rl_automata

type t

(** {1 Construction} *)

(** [create ~alphabet ~states ~initial ~accepting ~transitions ()] builds a
    Büchi automaton from [(source, symbol, target)] triples. *)
val create :
  alphabet:Alphabet.t ->
  states:int ->
  initial:int list ->
  accepting:int list ->
  transitions:(int * Alphabet.symbol * int) list ->
  unit ->
  t

(** [of_transition_system n] reads a {e trim, all-states-final} NFA — the
    representation of a prefix-closed behavior language [L] — as the Büchi
    automaton for [lim(L)] (every state accepting). This matches the paper's
    "finite-state system without acceptance conditions".
    @raise Invalid_argument if [n] has ε-moves or non-final states. *)
val of_transition_system : Nfa.t -> t

(** [limit_of_dfa d] accepts [lim(L(d))]: the DFA read as a Büchi automaton
    (correct because DFA runs are unique). *)
val limit_of_dfa : Dfa.t -> t

(** [limit ?budget n] accepts [lim(L(n))] for an arbitrary NFA [n]
    (via determinization, which is where [budget] is spent). *)
val limit : ?budget:Rl_engine_kernel.Budget.t -> Nfa.t -> t

(** [of_lasso alphabet x] accepts exactly the singleton ω-language [{x}]. *)
val of_lasso : Alphabet.t -> Lasso.t -> t

(** {1 Accessors} *)

val alphabet : t -> Alphabet.t
val states : t -> int
val initial : t -> int list
val accepting : t -> Rl_prelude.Bitset.t
val is_accepting : t -> int -> bool
val successors : t -> int -> Alphabet.symbol -> int list
val transitions : t -> (int * Alphabet.symbol * int) list

(** [csr b] is the flat CSR view of the transitions, built once at
    construction. Slice order equals the list order of {!successors}. *)
val csr : t -> Rl_prelude.Csr.t

(** [rcsr b] is the transposed CSR table ([Csr.transpose (csr b)]),
    built on first use and cached on the automaton — the backward
    passes (liveness pruning, simulation refinement) stop rebuilding
    it. Domain-safe (keep-first CAS). *)
val rcsr : t -> Rl_prelude.Csr.t

(** [iter_succ b q a f] applies [f] to every [a]-successor of [q], in
    {!successors} order, through the CSR table (no list allocation). *)
val iter_succ : t -> int -> Alphabet.symbol -> (int -> unit) -> unit

(** [has_edge b q a q'] decides whether [q --a--> q'] is a transition
    (linear scan of the CSR slice; no allocation). *)
val has_edge : t -> int -> Alphabet.symbol -> int -> bool

(** {1 Structural operations} *)

(** [reachable b] is the set of states reachable from the initial states. *)
val reachable : t -> Rl_prelude.Bitset.t

(** [live b] is the set of states from which some accepting run exists
    (states that reach a non-trivial SCC containing an accepting state). *)
val live : t -> Rl_prelude.Bitset.t

(** [sccs b] is Tarjan's strongly-connected-component decomposition:
    [(component_of_state, component_count)]. Components are numbered in
    reverse topological order (every edge goes from a higher-numbered
    component to a lower or equal one). *)
val sccs : t -> int array * int

(** [trim b] is the "reduced" automaton of the paper's Theorem 5.1 proof:
    restricted to reachable states from which an ω-word can be accepted.
    Preserves the language; may have zero states if the language is empty. *)
val trim : t -> t

(** {1 Decision procedures} *)

(** [is_empty b] decides [L(b) = ∅] via SCC analysis (Tarjan). *)
val is_empty : t -> bool

(** [is_empty_ndfs b] — the same decision by nested depth-first search;
    used to cross-check [is_empty] in the test suite. *)
val is_empty_ndfs : t -> bool

(** [accepting_lasso ?budget b] is a witness [u·v^ω ∈ L(b)], if the
    language is non-empty. The cycle passes through an accepting state.
    [budget] is charged for the (linear) witness search. *)
val accepting_lasso : ?budget:Rl_engine_kernel.Budget.t -> t -> Lasso.t option

(** [member b x] decides [x ∈ L(b)] for an ultimately periodic [x]. *)
val member : t -> Lasso.t -> bool

(** {1 Boolean operations} *)

(** [inter ?budget a b] accepts [L(a) ∩ L(b)] (generalized-Büchi product,
    degeneralized). Only reachable product pairs are explored; [budget] is
    ticked once per pair. *)
val inter : ?budget:Rl_engine_kernel.Budget.t -> t -> t -> t

(** [union a b] accepts [L(a) ∪ L(b)] (disjoint sum). *)
val union : t -> t -> t

(** {1 Prefixes and limits} *)

(** [pre_language ?budget b] is an NFA recognizing [pre(L(b))], the set of
    finite prefixes of accepted ω-words. *)
val pre_language : ?budget:Rl_engine_kernel.Budget.t -> t -> Nfa.t

(** {1 Generalized acceptance} *)

module Gba : sig
  (** Büchi automata with multiple acceptance sets, as produced by the
      LTL translation; a run is accepting iff it visits {e every} set
      infinitely often. *)

  type gba

  val create :
    alphabet:Alphabet.t ->
    states:int ->
    initial:int list ->
    accepting_sets:int list list ->
    transitions:(int * Alphabet.symbol * int) list ->
    unit ->
    gba

  (** [degeneralize g] is an equivalent plain Büchi automaton (counter
      construction; [m] sets multiply the state count by [m]). An empty
      list of sets means "all runs accepting". *)
  val degeneralize : gba -> t
end

(** {1 Output} *)

val pp : Format.formatter -> t -> unit
val to_dot : ?name:string -> t -> string
