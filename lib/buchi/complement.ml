open Rl_sigma

(* Kupferman–Vardi rank-based complementation.

   A state of the complement is a pair (g, o):
   - g maps each state of the input automaton to a rank in 0..2n, or ⊥
     (represented by -1) when no run of the input can be in that state;
     accepting input states only carry even ranks;
   - o is the subset of even-ranked tracked states whose runs still have to
     "pay" a rank decrease (the breakpoint construction).

   A word is accepted by the complement iff some ranking run empties o
   infinitely often, which happens exactly when every run of the input gets
   trapped in odd ranks — i.e. visits accepting states only finitely
   often. *)

type key = int array * int list

exception Too_large of int

let complement ?(budget = Rl_engine_kernel.Budget.unlimited) ?max_states b =
  let n = Buchi.states b in
  let alphabet = Buchi.alphabet b in
  let k = Alphabet.size alphabet in
  if n = 0 then begin
    (* L(b) = ∅: the complement accepts everything. Even this one-state
       result counts against the caps, so a zero budget fails here rather
       than silently succeeding. *)
    (match max_states with
    | Some limit when limit < 1 -> raise (Too_large limit)
    | _ -> ());
    Rl_engine_kernel.Budget.tick budget;
    let transitions = List.init k (fun a -> (0, a, 0)) in
    Buchi.create ~alphabet ~states:1 ~initial:[ 0 ] ~accepting:[ 0 ]
      ~transitions ()
  end
  else begin
    let max_rank = 2 * n in
    let table : (key, int) Hashtbl.t = Hashtbl.create 256 in
    let rev_states = ref [] in
    let count = ref 0 in
    let intern key =
      match Hashtbl.find_opt table key with
      | Some id -> (id, false)
      | None ->
          (match max_states with
          | Some limit when !count >= limit -> raise (Too_large limit)
          | _ -> ());
          Rl_engine_kernel.Budget.tick budget;
          let id = !count in
          incr count;
          Hashtbl.add table key id;
          rev_states := key :: !rev_states;
          (id, true)
    in
    let initial_set = Rl_prelude.Bitset.of_list n (Buchi.initial b) in
    let init_ranks =
      Array.init n (fun q ->
          if Rl_prelude.Bitset.mem initial_set q then max_rank else -1)
    in
    (* Initial accepting states must hold an even rank: max_rank is even. *)
    let init_key = (init_ranks, []) in
    let init_id, _ = intern init_key in
    let worklist = Queue.create () in
    Queue.add init_key worklist;
    let transitions = ref [] in
    let accepting = ref [] in
    let note_accepting key id = if snd key = [] then accepting := id :: !accepting in
    note_accepting init_key init_id;
    while not (Queue.is_empty worklist) do
      let ((g, o) as key) = Queue.pop worklist in
      let src = Hashtbl.find table key in
      for a = 0 to k - 1 do
        (* Rank bound for each successor state: min over its ranked
           predecessors. -1 means "not a successor" (stays ⊥). *)
        let bound = Array.make n (-1) in
        for q = 0 to n - 1 do
          if g.(q) >= 0 then
            List.iter
              (fun q' ->
                bound.(q') <-
                  (if bound.(q') = -1 then g.(q) else min bound.(q') g.(q)))
              (Buchi.successors b q a)
        done;
        (* Successors of the breakpoint set o. *)
        let o_succ = Array.make n false in
        List.iter
          (fun q ->
            List.iter (fun q' -> o_succ.(q') <- true) (Buchi.successors b q a))
          o;
        (* Enumerate all rankings g' compatible with the bounds. *)
        let dom = ref [] in
        for q = n - 1 downto 0 do
          if bound.(q) >= 0 then dom := q :: !dom
        done;
        let rec enumerate assigned = function
          | [] ->
              let g' = Array.make n (-1) in
              List.iter (fun (q, r) -> g'.(q) <- r) assigned;
              let o' =
                if o = [] then
                  List.filter_map
                    (fun (q, r) -> if r mod 2 = 0 then Some q else None)
                    assigned
                  |> List.sort compare
                else
                  List.filter_map
                    (fun (q, r) ->
                      if o_succ.(q) && r mod 2 = 0 then Some q else None)
                    assigned
                  |> List.sort compare
              in
              let key' = (g', o') in
              let dst, fresh = intern key' in
              if fresh then begin
                Queue.add key' worklist;
                note_accepting key' dst
              end;
              transitions := (src, a, dst) :: !transitions
          | q :: rest ->
              let is_acc = Buchi.is_accepting b q in
              for r = 0 to bound.(q) do
                if not (is_acc && r mod 2 = 1) then
                  enumerate ((q, r) :: assigned) rest
              done
        in
        enumerate [] !dom
      done
    done;
    Buchi.create ~alphabet ~states:!count ~initial:[ init_id ]
      ~accepting:!accepting ~transitions:!transitions ()
  end
