open Rl_sigma
module Budget = Rl_engine_kernel.Budget
module Pool = Rl_engine_kernel.Pool

(* Kupferman–Vardi rank-based complementation.

   A state of the complement is a pair (g, o):
   - g maps each state of the input automaton to a rank in 0..2n, or ⊥
     (represented by -1) when no run of the input can be in that state;
     accepting input states only carry even ranks;
   - o is the subset of even-ranked tracked states whose runs still have to
     "pay" a rank decrease (the breakpoint construction).

   A word is accepted by the complement iff some ranking run empties o
   infinitely often, which happens exactly when every run of the input gets
   trapped in odd ranks — i.e. visits accepting states only finitely
   often.

   The construction is level-synchronous: each round takes the frontier of
   freshly interned states, computes every state's compatible successor
   rankings — the exponential enumeration, and the part worth
   parallelizing — as a pure [Pool.parmap], then interns the results
   sequentially on the calling domain, in frontier order, symbol by
   symbol. That intern order equals the FIFO order of the serial worklist
   it replaced, so state numbering, transition list, accepting set and the
   point at which [Too_large] or the budget trips are all bit-identical to
   the serial construction, for every pool size. *)

type key = int array * int list

exception Too_large of int

let complement ?(budget = Budget.unlimited) ?max_states ?pool b =
  let n = Buchi.states b in
  let alphabet = Buchi.alphabet b in
  let k = Alphabet.size alphabet in
  if n = 0 then begin
    (* L(b) = ∅: the complement accepts everything. Even this one-state
       result counts against the caps, so a zero budget fails here rather
       than silently succeeding. *)
    (match max_states with
    | Some limit when limit < 1 -> raise (Too_large limit)
    | _ -> ());
    Budget.tick budget;
    let transitions = List.init k (fun a -> (0, a, 0)) in
    Buchi.create ~alphabet ~states:1 ~initial:[ 0 ] ~accepting:[ 0 ]
      ~transitions ()
  end
  else begin
    let max_rank = 2 * n in
    (* the automaton's own CSR table, built once at construction: the
       rank-enumeration hot loop below steps it as contiguous slices
       instead of re-walking successor lists for every (frontier state,
       symbol) pair *)
    let csr = Buchi.csr b in
    let offs = Rl_prelude.Csr.offsets csr
    and tgts = Rl_prelude.Csr.targets csr in
    let table : (key, int) Hashtbl.t = Hashtbl.create 256 in
    let count = ref 0 in
    let intern key =
      match Hashtbl.find_opt table key with
      | Some id -> (id, false)
      | None ->
          (match max_states with
          | Some limit when !count >= limit -> raise (Too_large limit)
          | _ -> ());
          Budget.tick budget;
          let id = !count in
          incr count;
          Hashtbl.add table key id;
          (id, true)
    in
    (* All successor keys of (g, o) on symbol [a], in enumeration order.
       Pure up to [Budget.poll]: runs on worker domains. [bound] and
       [o_succ] are caller-provided scratch, refilled here — the serial
       path reuses one pair across the whole construction, workers carry
       their own (the arrays escape into neither result nor table). *)
    let successor_keys ~bound ~o_succ (g, o) a =
      (* Rank bound for each successor state: min over its ranked
         predecessors. -1 means "not a successor" (stays ⊥). *)
      Array.fill bound 0 n (-1);
      for q = 0 to n - 1 do
        let r = g.(q) in
        if r >= 0 then begin
          let lo = offs.((q * k) + a) and hi = offs.((q * k) + a + 1) in
          for i = lo to hi - 1 do
            let q' = tgts.(i) in
            bound.(q') <- (if bound.(q') = -1 then r else min bound.(q') r)
          done
        end
      done;
      (* Successors of the breakpoint set o. *)
      Array.fill o_succ 0 n false;
      List.iter
        (fun q ->
          let lo = offs.((q * k) + a) and hi = offs.((q * k) + a + 1) in
          for i = lo to hi - 1 do
            o_succ.(tgts.(i)) <- true
          done)
        o;
      (* Enumerate all rankings g' compatible with the bounds. *)
      let dom = ref [] in
      for q = n - 1 downto 0 do
        if bound.(q) >= 0 then dom := q :: !dom
      done;
      let acc = ref [] in
      let rec enumerate assigned = function
        | [] ->
            let g' = Array.make n (-1) in
            List.iter (fun (q, r) -> g'.(q) <- r) assigned;
            let o' =
              if o = [] then
                List.filter_map
                  (fun (q, r) -> if r mod 2 = 0 then Some q else None)
                  assigned
                |> List.sort compare
              else
                List.filter_map
                  (fun (q, r) ->
                    if o_succ.(q) && r mod 2 = 0 then Some q else None)
                  assigned
                |> List.sort compare
            in
            acc := (g', o') :: !acc
        | q :: rest ->
            let is_acc = Buchi.is_accepting b q in
            for r = 0 to bound.(q) do
              if not (is_acc && r mod 2 = 1) then
                enumerate ((q, r) :: assigned) rest
            done
      in
      enumerate [] !dom;
      List.rev !acc
    in
    let expand_with ~bound ~o_succ key =
      Budget.poll budget;
      Array.init k (fun a -> successor_keys ~bound ~o_succ key a)
    in
    let initial_set = Rl_prelude.Bitset.of_list n (Buchi.initial b) in
    let init_ranks =
      Array.init n (fun q ->
          if Rl_prelude.Bitset.mem initial_set q then max_rank else -1)
    in
    (* Initial accepting states must hold an even rank: max_rank is even. *)
    let init_key = (init_ranks, []) in
    let init_id, _ = intern init_key in
    let transitions = ref [] in
    let accepting = ref [] in
    let note_accepting key id =
      if snd key = [] then accepting := id :: !accepting
    in
    note_accepting init_key init_id;
    let frontier = ref [ init_key ] (* most recent first *) in
    while !frontier <> [] do
      let keys = Array.of_list (List.rev !frontier) in
      frontier := [];
      let expanded =
        match pool with
        | Some p ->
            Pool.parmap p
              (fun key ->
                expand_with ~bound:(Array.make n (-1))
                  ~o_succ:(Array.make n false) key)
              keys
        | None ->
            let bound = Array.make n (-1) and o_succ = Array.make n false in
            Array.map (expand_with ~bound ~o_succ) keys
      in
      (* Intern sequentially, in frontier order: FIFO worklist order. *)
      Array.iteri
        (fun i key ->
          let src = Hashtbl.find table key in
          Array.iteri
            (fun a succs ->
              List.iter
                (fun key' ->
                  let dst, fresh = intern key' in
                  if fresh then begin
                    frontier := key' :: !frontier;
                    note_accepting key' dst
                  end;
                  transitions := (src, a, dst) :: !transitions)
                succs)
            expanded.(i))
        keys
    done;
    Buchi.create ~alphabet ~states:!count ~initial:[ init_id ]
      ~accepting:!accepting ~transitions:!transitions ()
  end
