(** Complementation of Büchi automata (Kupferman–Vardi rank-based
    construction).

    The relative-safety check of Lemma 4.4 is an ω-language inclusion, which
    needs a complement when the property is handed over as an automaton
    rather than a formula. The construction tracks {e level rankings}: a
    function bounding, for every state a run of the input could be in, how
    many more visits to accepting states that run can make. The state space
    is [O((2n)^n)], so this is for small automata — which is exactly how the
    PSPACE-completeness of Theorem 4.5 manifests operationally.

    The construction is level-synchronous: with [?pool], the exponential
    successor-ranking enumeration of each frontier state runs as a pure
    task across the pool's domains, while interning, transition
    recording, budget ticking and the [Too_large] cap all stay on the
    calling domain in FIFO frontier order — the output automaton is
    bit-identical for every pool size. *)

exception Too_large of int
(** Raised when [~max_states] is exceeded; carries the limit. *)

(** [complement ?budget ?max_states ?pool b] accepts [Σ^ω \ L(b)].
    @param budget ticked once per constructed ranking state, always on
    the calling domain; {!Rl_engine_kernel.Budget.Exhausted} is raised
    when it runs out.
    @param max_states abort with {!Too_large} when the construction
    exceeds this many states (default: unbounded). Useful for callers
    that can fall back or skip — the state space is exponential by
    nature.
    @param pool fan the per-state ranking enumeration out across worker
    domains. *)
val complement :
  ?budget:Rl_engine_kernel.Budget.t ->
  ?max_states:int ->
  ?pool:Rl_engine_kernel.Pool.t ->
  Buchi.t ->
  Buchi.t
