(** Complementation of Büchi automata (Kupferman–Vardi rank-based
    construction).

    The relative-safety check of Lemma 4.4 is an ω-language inclusion, which
    needs a complement when the property is handed over as an automaton
    rather than a formula. The construction tracks {e level rankings}: a
    function bounding, for every state a run of the input could be in, how
    many more visits to accepting states that run can make. The state space
    is [O((2n)^n)], so this is for small automata — which is exactly how the
    PSPACE-completeness of Theorem 4.5 manifests operationally. *)

exception Too_large of int
(** Raised when [~max_states] is exceeded; carries the limit. *)

(** [complement ?budget ?max_states b] accepts [Σ^ω \ L(b)].
    @param budget ticked once per constructed ranking state;
    {!Rl_engine_kernel.Budget.Exhausted} is raised when it runs out.
    @param max_states abort with {!Too_large} when the construction
    exceeds this many states (default: unbounded). Useful for callers
    that can fall back or skip — the state space is exponential by
    nature. *)
val complement :
  ?budget:Rl_engine_kernel.Budget.t -> ?max_states:int -> Buchi.t -> Buchi.t
