open Rl_sigma
open Rl_automata

let is_safety = Omega_lang.is_limit_closed

let is_liveness ?pool ?(reduce = true) b =
  (* pre(L) = Σ*: every word extends to a behavior — an antichain
     inclusion of the one-state Σ* automaton in the prefix NFA, with no
     determinization. [reduce] shrinks the property by its simulation
     quotient first and prunes the antichain by simulation subsumption;
     both are language-preserving, so the verdict is unchanged. *)
  let b = if reduce then Reduce.quotient (Buchi.trim b) else b in
  let pre = Buchi.pre_language b in
  let pre = if reduce then Preorder.reduce pre else pre in
  let k = Alphabet.size (Buchi.alphabet b) in
  let sigma_star =
    Nfa.create
      ~alphabet:(Buchi.alphabet b)
      ~states:1 ~initial:[ 0 ] ~finals:[ 0 ]
      ~transitions:(List.init k (fun a -> (0, a, 0)))
      ()
  in
  let subsumption = if reduce then `Simulation else `Subset in
  match Inclusion.included ?pool ~subsumption sigma_star pre with
  | Ok () -> true
  | Error _ -> false

let universal_buchi alphabet =
  let k = Alphabet.size alphabet in
  Buchi.create ~alphabet ~states:1 ~initial:[ 0 ] ~accepting:[ 0 ]
    ~transitions:(List.init k (fun a -> (0, a, 0)))
    ()

let liveness_part ?budget ?max_states ?pool b =
  Buchi.union b
    (Complement.complement ?budget ?max_states ?pool
       (Omega_lang.safety_closure b))

let decompose ?budget ?max_states ?pool b =
  (Omega_lang.safety_closure b, liveness_part ?budget ?max_states ?pool b)
