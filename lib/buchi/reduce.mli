(** Simulation-based reduction of Büchi automata.

    [p] {e directly simulates} [q] when [p] can mimic every move of [q]
    with at least the same acceptance: [q ∈ F ⇒ p ∈ F], and every
    [a]-successor of [q] is directly simulated by some [a]-successor of
    [p]. Quotienting by mutual direct simulation preserves the ω-language
    (Dill–Hu–Wong-Toi). The reduction matters most in front of the
    Kupferman–Vardi complementation, whose cost is exponential in the
    state count. *)

(** [preorder b] is the direct-simulation preorder of [b], computed by
    the shared refinement engine ({!Rl_automata.Preorder}) and memoized
    per automaton fingerprint in the kernel's Simcache. *)
val preorder : Buchi.t -> Rl_automata.Preorder.t

(** [direct_simulation b] is the direct-simulation preorder as a matrix:
    [(sim, n)] with [sim.(q).(p) = true] iff [p] simulates [q]. *)
val direct_simulation : Buchi.t -> bool array array

(** [quotient b] merges mutually simulating states. Language-preserving;
    never larger than [b]. *)
val quotient : Buchi.t -> Buchi.t
