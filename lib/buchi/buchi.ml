open Rl_prelude
open Rl_sigma
open Rl_automata

type t = {
  alphabet : Alphabet.t;
  states : int;
  initial : int list;
  accepting : Bitset.t;
  delta : int list array array;
  csr : Csr.t;
      (* the canonical flat transition table, built once per automaton;
         slice order equals the [delta] list order *)
  rcsr : Csr.t option Atomic.t;
      (* the transposed table, built lazily on first backward pass
         (liveness pruning, simulation refinement) and cached; the
         keep-first CAS makes the cell domain-safe *)
}

(* Every construction site funnels through [make]: the delta is frozen
   into a CSR table exactly once, after all mutation. *)
let make ~alphabet ~states ~initial ~accepting ~delta =
  let csr = Csr.of_lists ~states ~symbols:(Alphabet.size alphabet) delta in
  { alphabet; states; initial; accepting; delta; csr; rcsr = Atomic.make None }

let create ~alphabet ~states ~initial ~accepting ~transitions () =
  if states < 0 then invalid_arg "Buchi.create: negative state count";
  let k = Alphabet.size alphabet in
  let check q =
    if q < 0 || q >= states then invalid_arg "Buchi: state out of range"
  in
  let delta = Array.init states (fun _ -> Array.make k []) in
  let acc = Bitset.create states in
  List.iter check initial;
  List.iter
    (fun q ->
      check q;
      Bitset.add acc q)
    accepting;
  List.iter
    (fun (q, a, q') ->
      check q;
      check q';
      if a < 0 || a >= k then invalid_arg "Buchi.create: symbol out of range";
      delta.(q).(a) <- q' :: delta.(q).(a))
    transitions;
  make ~alphabet ~states ~initial ~accepting:acc ~delta

let alphabet t = t.alphabet
let states t = t.states
let initial t = t.initial
let accepting t = t.accepting
let is_accepting t q = Bitset.mem t.accepting q
let successors t q a = t.delta.(q).(a)
let csr t = t.csr

let rcsr t =
  match Atomic.get t.rcsr with
  | Some r -> r
  | None ->
      let r = Csr.transpose t.csr in
      if Atomic.compare_and_set t.rcsr None (Some r) then r
      else (match Atomic.get t.rcsr with Some r -> r | None -> r)

let iter_succ t q a f = Csr.iter_succ t.csr q a f
let has_edge t q a q' = Csr.mem_succ t.csr q a q'

let transitions t =
  let acc = ref [] in
  for q = t.states - 1 downto 0 do
    for a = Alphabet.size t.alphabet - 1 downto 0 do
      List.iter (fun q' -> acc := (q, a, q') :: !acc) t.delta.(q).(a)
    done
  done;
  !acc

let of_transition_system n =
  if Nfa.has_eps n then
    invalid_arg "Buchi.of_transition_system: ε-moves not allowed";
  if not (Nfa.all_states_final n) then
    invalid_arg "Buchi.of_transition_system: all states must be final";
  create ~alphabet:(Nfa.alphabet n) ~states:(Nfa.states n)
    ~initial:(Nfa.initial n)
    ~accepting:(List.init (Nfa.states n) Fun.id)
    ~transitions:(Nfa.transitions n) ()

let limit_of_dfa d =
  let k = Alphabet.size (Dfa.alphabet d) in
  let transitions = ref [] in
  for q = 0 to Dfa.states d - 1 do
    for a = 0 to k - 1 do
      transitions := (q, a, Dfa.step d q a) :: !transitions
    done
  done;
  let accepting =
    List.filter (Dfa.is_final d) (List.init (Dfa.states d) Fun.id)
  in
  create ~alphabet:(Dfa.alphabet d) ~states:(Dfa.states d)
    ~initial:[ Dfa.initial d ] ~accepting ~transitions:!transitions ()

let limit ?budget n = limit_of_dfa (Dfa.determinize ?budget n)

let of_lasso alphabet x =
  let stem = Lasso.stem x and cycle = Lasso.cycle x in
  let s = Word.length stem and p = Word.length cycle in
  let n = s + p in
  let transitions = ref [] in
  for i = 0 to s - 1 do
    transitions := (i, Word.get stem i, i + 1) :: !transitions
  done;
  for i = 0 to p - 1 do
    let target = if i = p - 1 then s else s + i + 1 in
    transitions := (s + i, Word.get cycle i, target) :: !transitions
  done;
  create ~alphabet ~states:n ~initial:[ 0 ]
    ~accepting:(List.init n Fun.id) ~transitions:!transitions ()

(* --- graph analyses --- *)

(* Kept as a compatibility shim: [tarjan] iterates these lists, and its
   SCC numbering (observable through [bottom_sccs] grouping order in the
   fairness layer) depends on this exact successor order. The
   order-insensitive analyses below step the CSR table instead. *)
let all_successors t q =
  Array.fold_left (fun acc l -> List.rev_append l acc) [] t.delta.(q)

let reachable t =
  let seen = Bitset.create t.states in
  let stack = ref [] in
  List.iter
    (fun q ->
      if not (Bitset.mem seen q) then begin
        Bitset.add seen q;
        stack := q :: !stack
      end)
    t.initial;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        Csr.iter_row_all t.csr q (fun q' ->
            if not (Bitset.mem seen q') then begin
              Bitset.add seen q';
              stack := q' :: !stack
            end)
  done;
  seen

(* SCC decomposition, delegated to the shared prelude Tarjan. Feeding it
   [all_successors] in list order reproduces the numbering of the
   original embedded implementation bit-for-bit. *)
let tarjan t =
  let s = Scc.of_succ ~states:t.states (fun q f -> List.iter f (all_successors t q)) in
  (s.Scc.comp, s.Scc.count)

let sccs = tarjan

(* An SCC is "good" when a run can loop inside it through an accepting
   state: it is non-trivial (contains an edge) and contains an accepting
   state. *)
let good_sccs t (scc_id, scc_count) =
  let nontrivial = Array.make scc_count false in
  let has_acc = Array.make scc_count false in
  for q = 0 to t.states - 1 do
    let id = scc_id.(q) in
    if Bitset.mem t.accepting q then has_acc.(id) <- true;
    Csr.iter_row_all t.csr q (fun q' ->
        if scc_id.(q') = id then nontrivial.(id) <- true)
  done;
  Array.init scc_count (fun id -> nontrivial.(id) && has_acc.(id))

let live t =
  if t.states = 0 then Bitset.create 0
  else begin
    let ((scc_id, _) as sccs) = tarjan t in
    let good = good_sccs t sccs in
    let live = Bitset.create t.states in
    (* backward closure over the cached transpose: predecessors of [q]
       are one contiguous row scan, no per-state list building *)
    let rdelta = rcsr t in
    let stack = ref [] in
    for q = 0 to t.states - 1 do
      if good.(scc_id.(q)) && not (Bitset.mem live q) then begin
        Bitset.add live q;
        stack := q :: !stack
      end
    done;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | q :: rest ->
          stack := rest;
          Csr.iter_row_all rdelta q (fun p ->
              if not (Bitset.mem live p) then begin
                Bitset.add live p;
                stack := p :: !stack
              end)
    done;
    live
  end

let restrict t keep =
  let remap = Array.make (max t.states 1) (-1) in
  let count = ref 0 in
  Bitset.iter
    (fun q ->
      remap.(q) <- !count;
      incr count)
    keep;
  let n = !count in
  let k = Alphabet.size t.alphabet in
  let delta = Array.init n (fun _ -> Array.make k []) in
  let accepting = Bitset.create n in
  Bitset.iter
    (fun q ->
      let q2 = remap.(q) in
      if Bitset.mem t.accepting q then Bitset.add accepting q2;
      for a = 0 to k - 1 do
        delta.(q2).(a) <-
          List.filter_map
            (fun q' -> if Bitset.mem keep q' then Some remap.(q') else None)
            t.delta.(q).(a)
      done)
    keep;
  let initial =
    List.filter_map
      (fun q -> if Bitset.mem keep q then Some remap.(q) else None)
      t.initial
  in
  make ~alphabet:t.alphabet ~states:n ~initial ~accepting ~delta

let trim t =
  let keep = reachable t in
  Bitset.inter_into ~into:keep (live t);
  restrict t keep

let is_empty t =
  let l = live t in
  not (List.exists (Bitset.mem l) t.initial)

(* Nested DFS (Courcoubetis–Vardi–Wolper–Yannakakis), used as an
   independent oracle for [is_empty] in tests. *)
let is_empty_ndfs t =
  let n = t.states in
  if n = 0 then true
  else begin
    let blue = Array.make n false in
    let red = Array.make n false in
    let on_path = Array.make n false in
    let exception Found in
    let rec red_dfs q =
      List.iter
        (fun q' ->
          if on_path.(q') then raise Found;
          if not red.(q') then begin
            red.(q') <- true;
            red_dfs q'
          end)
        (all_successors t q)
    in
    let rec blue_dfs q =
      blue.(q) <- true;
      on_path.(q) <- true;
      List.iter (fun q' -> if not blue.(q') then blue_dfs q') (all_successors t q);
      if Bitset.mem t.accepting q then begin
        (* post-order check from accepting state *)
        red_dfs q
      end;
      on_path.(q) <- false
    in
    try
      List.iter (fun q -> if not blue.(q) then blue_dfs q) t.initial;
      true
    with Found -> false
  end

let accepting_lasso ?(budget = Rl_engine_kernel.Budget.unlimited) t =
  if t.states = 0 then None
  else begin
    (* the automaton is already built: the witness search is linear, so a
       single bulk charge accounts for it *)
    Rl_engine_kernel.Budget.charge budget t.states;
    let reach = reachable t in
    let ((scc_id, _) as sccs) = tarjan t in
    let good = good_sccs t sccs in
    (* Find a reachable accepting state inside a good SCC. *)
    let target = ref None in
    for q = 0 to t.states - 1 do
      if
        !target = None && Bitset.mem reach q
        && Bitset.mem t.accepting q
        && good.(scc_id.(q))
      then target := Some q
    done;
    match !target with
    | None -> None
    | Some f ->
        (* BFS path initial → f with labels. *)
        let bfs start stop restrict_scc =
          let parent = Array.make t.states None in
          let seen = Bitset.create t.states in
          let queue = Queue.create () in
          List.iter
            (fun (q, lab) ->
              if not (Bitset.mem seen q) then begin
                Bitset.add seen q;
                parent.(q) <- lab;
                Queue.add q queue
              end)
            start;
          let found = ref None in
          while !found = None && not (Queue.is_empty queue) do
            let q = Queue.pop queue in
            if q = stop then found := Some q
            else
              Array.iteri
                (fun a succs ->
                  List.iter
                    (fun q' ->
                      let ok =
                        match restrict_scc with
                        | None -> true
                        | Some id -> scc_id.(q') = id
                      in
                      if ok && not (Bitset.mem seen q') then begin
                        Bitset.add seen q';
                        parent.(q') <- Some (q, a);
                        Queue.add q' queue
                      end)
                    succs)
                t.delta.(q)
          done;
          match !found with
          | None -> None
          | Some q ->
              let rec back q acc =
                match parent.(q) with
                | None -> acc
                | Some (p, a) -> back p (a :: acc)
              in
              Some (back q [])
        in
        let stem =
          match bfs (List.map (fun q -> (q, None)) t.initial) f None with
          | Some labels -> Word.of_list labels
          | None -> assert false
        in
        (* Cycle: take one edge f --a--> q' inside f's SCC, then a path
           q' → f. The BFS starts fresh at q' (parent None) so the back
           walk terminates there; the first edge is prepended. *)
        let id = scc_id.(f) in
        let first_edges = ref [] in
        Array.iteri
          (fun a succs ->
            List.iter
              (fun q' -> if scc_id.(q') = id then first_edges := (a, q') :: !first_edges)
              succs)
          t.delta.(f);
        let rec try_edges = function
          | [] -> None
          | (a, q') :: rest -> (
              match bfs [ (q', None) ] f (Some id) with
              | Some labels -> Some (Word.of_list (a :: labels))
              | None -> try_edges rest)
        in
        let cycle =
          match try_edges !first_edges with
          | Some c -> c
          | None -> assert false (* f lies in a good (non-trivial) SCC *)
        in
        Some (Lasso.make stem cycle)
  end

(* --- generalized Büchi --- *)

module Gba = struct
  type gba = {
    g_alphabet : Alphabet.t;
    g_states : int;
    g_initial : int list;
    g_sets : Bitset.t array;
    g_delta : int list array array;
  }

  let create ~alphabet ~states ~initial ~accepting_sets ~transitions () =
    let base =
      create ~alphabet ~states ~initial ~accepting:[] ~transitions ()
    in
    let sets =
      Array.of_list
        (List.map
           (fun set ->
             let b = Bitset.create states in
             List.iter
               (fun q ->
                 if q < 0 || q >= states then
                   invalid_arg "Gba.create: state out of range";
                 Bitset.add b q)
               set;
             b)
           accepting_sets)
    in
    {
      g_alphabet = alphabet;
      g_states = states;
      g_initial = initial;
      g_sets = sets;
      g_delta = base.delta;
    }

  let degeneralize g =
    let m = Array.length g.g_sets in
    if m = 0 then
      (* no constraint: every infinite run accepts *)
      make ~alphabet:g.g_alphabet ~states:g.g_states ~initial:g.g_initial
        ~accepting:(Bitset.of_list g.g_states (List.init g.g_states Fun.id))
        ~delta:g.g_delta
    else begin
      let k = Alphabet.size g.g_alphabet in
      let n = g.g_states in
      let encode q i = (q * m) + i in
      let next i q = if Bitset.mem g.g_sets.(i) q then (i + 1) mod m else i in
      let total = n * m in
      let delta = Array.init total (fun _ -> Array.make k []) in
      for q = 0 to n - 1 do
        for i = 0 to m - 1 do
          let j = next i q in
          for a = 0 to k - 1 do
            delta.(encode q i).(a) <- List.map (fun q' -> encode q' j) g.g_delta.(q).(a)
          done
        done
      done;
      let accepting = Bitset.create total in
      for q = 0 to n - 1 do
        if Bitset.mem g.g_sets.(0) q then Bitset.add accepting (encode q 0)
      done;
      make ~alphabet:g.g_alphabet ~states:total
        ~initial:(List.map (fun q -> encode q 0) g.g_initial)
        ~accepting ~delta
    end
end

let inter ?(budget = Rl_engine_kernel.Budget.unlimited) a b =
  if not (Alphabet.equal a.alphabet b.alphabet) then
    invalid_arg "Buchi.inter: alphabet mismatch";
  if a.states = 0 || b.states = 0 then
    create ~alphabet:a.alphabet ~states:0 ~initial:[] ~accepting:[]
      ~transitions:[] ()
  else begin
    (* explore only the reachable pairs: the full product is quadratic and
       dominates memory when one operand is large (e.g. a complement) *)
    let k = Alphabet.size a.alphabet in
    let table = Hashtbl.create 64 in
    let rev = ref [] in
    let count = ref 0 in
    let intern pair =
      match Hashtbl.find_opt table pair with
      | Some id -> (id, false)
      | None ->
          Rl_engine_kernel.Budget.tick budget;
          let id = !count in
          incr count;
          Hashtbl.add table pair id;
          rev := pair :: !rev;
          (id, true)
    in
    let queue = Queue.create () in
    let initial =
      List.concat_map
        (fun p ->
          List.map
            (fun q ->
              let pair = (p, q) in
              let id, fresh = intern pair in
              if fresh then Queue.add pair queue;
              id)
            b.initial)
        a.initial
    in
    let transitions = ref [] in
    while not (Queue.is_empty queue) do
      let ((p, q) as pair) = Queue.pop queue in
      let src = Hashtbl.find table pair in
      for s = 0 to k - 1 do
        List.iter
          (fun p' ->
            List.iter
              (fun q' ->
                let pair' = (p', q') in
                let dst, fresh = intern pair' in
                if fresh then Queue.add pair' queue;
                transitions := (src, s, dst) :: !transitions)
              b.delta.(q).(s))
          a.delta.(p).(s)
      done
    done;
    let n = !count in
    let pairs = Array.of_list (List.rev !rev) in
    let set1 = ref [] and set2 = ref [] in
    Array.iteri
      (fun id (p, q) ->
        if Bitset.mem a.accepting p then set1 := id :: !set1;
        if Bitset.mem b.accepting q then set2 := id :: !set2)
      pairs;
    let g =
      Gba.create ~alphabet:a.alphabet ~states:n ~initial
        ~accepting_sets:[ !set1; !set2 ] ~transitions:!transitions ()
    in
    trim (Gba.degeneralize g)
  end

let union a b =
  if not (Alphabet.equal a.alphabet b.alphabet) then
    invalid_arg "Buchi.union: alphabet mismatch";
  let shift q = q + a.states in
  let transitions =
    transitions a
    @ List.map (fun (q, s, q') -> (shift q, s, shift q')) (transitions b)
  in
  create ~alphabet:a.alphabet ~states:(a.states + b.states)
    ~initial:(a.initial @ List.map shift b.initial)
    ~accepting:
      (Bitset.elements a.accepting
      @ List.map shift (Bitset.elements b.accepting))
    ~transitions ()

let member t x = not (is_empty (inter t (of_lasso t.alphabet x)))

let pre_language ?(budget = Rl_engine_kernel.Budget.unlimited) t =
  Rl_engine_kernel.Budget.charge budget t.states;
  let t = trim t in
  if t.states = 0 then
    Nfa.create ~alphabet:t.alphabet ~states:0 ~initial:[] ~finals:[]
      ~transitions:[] ()
  else
    Nfa.create ~alphabet:t.alphabet ~states:t.states ~initial:t.initial
      ~finals:(List.init t.states Fun.id)
      ~transitions:(transitions t) ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Buchi over %a: %d states, initial %a, accepting %a@,"
    Alphabet.pp t.alphabet t.states
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    t.initial Bitset.pp t.accepting;
  List.iter
    (fun (q, a, q') ->
      Format.fprintf ppf "  %d --%s--> %d@," q (Alphabet.name t.alphabet a) q')
    (transitions t);
  Format.fprintf ppf "@]"

let to_dot ?(name = "buchi") t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  List.iter
    (fun q ->
      Buffer.add_string buf
        (Printf.sprintf "  init%d [shape=point];\n  init%d -> %d;\n" q q q))
    t.initial;
  for q = 0 to t.states - 1 do
    let shape = if Bitset.mem t.accepting q then "doublecircle" else "circle" in
    Buffer.add_string buf (Printf.sprintf "  %d [shape=%s];\n" q shape)
  done;
  List.iter
    (fun (q, a, q') ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" q q'
           (Alphabet.name t.alphabet a)))
    (transitions t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
