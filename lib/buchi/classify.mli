(** Absolute safety and liveness of ω-regular properties
    (Alpern–Schneider, the paper's reference [3]).

    Relative liveness/safety relativize these notions to a behavior set
    [Lω]; Remark 1 of the paper says the two coincide when [Lω = Σ^ω].
    This module provides the absolute side of that remark — used by the
    test suite to cross-validate the relative deciders — together with the
    classical decomposition of an arbitrary property into a safety and a
    liveness part. *)

open Rl_sigma

(** [is_safety b] — [L(b)] is a safety property: it equals its topological
    closure [lim(pre(L))] (equivalently: every violation has an
    irrecoverable finite prefix). *)
val is_safety : Buchi.t -> bool

(** [is_liveness ?pool b] — [L(b)] is a liveness property:
    [pre(L(b)) = Σ*] (every finite word can be extended into [L(b)]).
    [?pool] parallelizes the antichain inclusion; [reduce] (default
    [true]) shrinks [b] and its prefix NFA by their cached simulation
    quotients and prunes the antichain by simulation subsumption — the
    verdict is reduction-invariant. *)
val is_liveness :
  ?pool:Rl_engine_kernel.Pool.t -> ?reduce:bool -> Buchi.t -> bool

(** [universal_buchi alphabet] accepts [Σ^ω]. *)
val universal_buchi : Alphabet.t -> Buchi.t

(** [liveness_part ?budget ?max_states b] is
    [L(b) ∪ (Σ^ω \ closure(L(b)))] — a liveness property
    (Alpern–Schneider). The optional limits govern the embedded
    Kupferman–Vardi complementation; [max_states] aborts it with
    {!Complement.Too_large}. *)
val liveness_part :
  ?budget:Rl_engine_kernel.Budget.t ->
  ?max_states:int ->
  ?pool:Rl_engine_kernel.Pool.t ->
  Buchi.t ->
  Buchi.t

(** [decompose ?budget ?max_states b] is [(safety, liveness)] with
    [L(b) = L(safety) ∩ L(liveness)], [safety = lim(pre(L(b)))] the safety
    closure and [liveness = liveness_part b]. *)
val decompose :
  ?budget:Rl_engine_kernel.Budget.t ->
  ?max_states:int ->
  ?pool:Rl_engine_kernel.Pool.t ->
  Buchi.t ->
  Buchi.t * Buchi.t
