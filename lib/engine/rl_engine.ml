(* The resource-governed checking engine: budgets, typed errors and
   certified witnesses under one roof.

   [Budget] and [Error] are the kernel modules re-exported, so the types
   here are equal to the ones threaded through the automata libraries:
   [Rl_engine.Budget.t = Rl_engine_kernel.Budget.t]. *)

module Budget = Rl_engine_kernel.Budget
module Pool = Rl_engine_kernel.Pool
module Fault = Rl_engine_kernel.Fault
module Lru = Rl_engine_kernel.Lru
module Simcache = Rl_engine_kernel.Simcache
module Stats = Rl_engine_kernel.Stats

module Error = struct
  include Rl_engine_kernel.Error

  (* the toolchain's own domain exceptions, mapped to typed errors *)
  let of_exn = function
    | Rl_ltl.Parser.Parse_error msg ->
        Some (Parse_error { file = None; line = 0; msg })
    | Rl_core.Ts_format.Syntax_error (line, msg) ->
        Some (Parse_error { file = None; line; msg })
    | Rl_petri.Petri.Unbounded place ->
        Some (Unbounded_net { place; bound = Rl_petri.Petri.default_bound })
    | Rl_buchi.Complement.Too_large limit ->
        (* the rank-based construction hit its structural state cap: same
           verdict as an exhausted state budget, with the phase named *)
        Some
          (Budget_exhausted
             {
               Rl_engine_kernel.Budget.resource = `States;
               phase = "Büchi complementation";
               states_explored = limit;
               max_states = Some limit;
             })
    | Sys_error msg -> Some (Internal msg)
    | _ -> None

  (* shadow the kernel's [protect]: same contract, with the domain
     exceptions above handled by default *)
  let protect ?(handler = fun _ -> None) f =
    Rl_engine_kernel.Error.protect
      ~handler:(fun e ->
        match handler e with Some err -> Some err | None -> of_exn e)
      f
end

module Certify = Certify
