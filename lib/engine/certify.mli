(** Independent replay of every witness the checkers produce.

    The decision procedures of {!Rl_core.Relative} run through translated,
    complemented and determinized automata — exactly the constructions
    where an implementation bug would silently flip a verdict. Before a
    witness is reported to a user it is replayed here through a {e
    different} code path: LTL properties are evaluated by the direct lasso
    semantics ({!Rl_ltl.Semantics.satisfies}, no Büchi translation),
    automaton properties by lasso membership ({!Rl_buchi.Buchi.member}, no
    complementation), and system membership by simulating the lasso on the
    system automaton. A certification failure means the toolchain itself
    is wrong, never the input.

    Three oracles cover the three witness shapes:
    - {!counterexample} — a lasso violating classical satisfaction
      ([x ∈ Lω], [x ∉ P]), also the witness shape of relative-safety
      failures;
    - {!doomed_prefix} — a prefix refuting relative liveness ([w ∈
      pre(Lω)] with no extension into [Lω ∩ P], re-checked constructively
      via {!Rl_core.Relative.witness_extension});
    - {!extension} — a Lemma 4.9 witness extension ([x] extends [w] inside
      [Lω ∩ P]).

    {!verdict_triple} additionally cross-checks full verdicts against
    Theorem 4.7: [P] is satisfied iff it is both a relative liveness and a
    relative safety property of the system. *)

open Rl_sigma
open Rl_buchi
open Rl_core

type failure =
  | Not_in_system of Lasso.t
      (** the claimed witness is not a behavior of the system *)
  | Satisfies_property of Lasso.t
      (** the claimed counterexample satisfies the property after all *)
  | Violates_property of Lasso.t
      (** the claimed witness extension does not satisfy the property *)
  | Prefix_not_in_system of Word.t
      (** the claimed doomed prefix is not in [pre(Lω)] *)
  | Extension_exists of { prefix : Word.t; extension : Lasso.t }
      (** the claimed doomed prefix is not doomed; [extension] proves it *)
  | Not_an_extension of { prefix : Word.t; extension : Lasso.t }
      (** the claimed extension does not start with the prefix *)
  | Inconsistent_triple of { sat : bool; rl : bool; rs : bool }
      (** Theorem 4.7 fails: [sat ≠ (rl ∧ rs)] *)

val pp_failure : Format.formatter -> failure -> unit

(** [property_holds p x] — membership of the behavior [x] in [P], decided
    independently of the checking pipeline (see the module preamble). *)
val property_holds : Relative.property -> Lasso.t -> bool

(** [prefix_in_system ~system w] — [w ∈ pre(Lω)], by direct simulation. *)
val prefix_in_system : system:Buchi.t -> Word.t -> bool

(** [counterexample ~system p x] certifies a classical-satisfaction (or
    relative-safety) counterexample: [x] must be a behavior of the system
    that violates [P]. *)
val counterexample :
  system:Buchi.t -> Relative.property -> Lasso.t -> (unit, failure) result

(** [doomed_prefix ?budget ~system p w] certifies a relative-liveness
    refutation: [w] must be a system prefix with no extension to a
    behavior satisfying [P]. The re-check runs
    {!Rl_core.Relative.witness_extension} under [budget]. *)
val doomed_prefix :
  ?budget:Rl_engine_kernel.Budget.t ->
  system:Buchi.t ->
  Relative.property ->
  Word.t ->
  (unit, failure) result

(** [extension ~system p ~prefix x] certifies a Lemma 4.9 witness: [x]
    starts with [prefix], is a behavior of the system, and satisfies
    [P]. *)
val extension :
  system:Buchi.t ->
  Relative.property ->
  prefix:Word.t ->
  Lasso.t ->
  (unit, failure) result

(** {1 Theorem 4.7 consistency} *)

type triple = { sat : bool; rl : bool; rs : bool }

(** [verdict_triple ?budget ?pool ~system p] runs all three deciders;
    with a pool of size > 1 the three legs run on separate domains. *)
val verdict_triple :
  ?budget:Rl_engine_kernel.Budget.t ->
  ?pool:Rl_engine_kernel.Pool.t ->
  system:Buchi.t ->
  Relative.property ->
  triple

(** [consistent t] — Theorem 4.7: [t.sat = (t.rl && t.rs)]. *)
val consistent : triple -> bool

val check_triple : triple -> (unit, failure) result
