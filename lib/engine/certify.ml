open Rl_sigma
open Rl_buchi
open Rl_core
module Budget = Rl_engine_kernel.Budget

type failure =
  | Not_in_system of Lasso.t
  | Satisfies_property of Lasso.t
  | Violates_property of Lasso.t
  | Prefix_not_in_system of Word.t
  | Extension_exists of { prefix : Word.t; extension : Lasso.t }
  | Not_an_extension of { prefix : Word.t; extension : Lasso.t }
  | Inconsistent_triple of { sat : bool; rl : bool; rs : bool }

let pp_failure ppf = function
  | Not_in_system _ ->
      Format.pp_print_string ppf
        "claimed witness is not a behavior of the system"
  | Satisfies_property _ ->
      Format.pp_print_string ppf
        "claimed counterexample actually satisfies the property"
  | Violates_property _ ->
      Format.pp_print_string ppf
        "claimed witness extension violates the property"
  | Prefix_not_in_system _ ->
      Format.pp_print_string ppf
        "claimed doomed prefix is not a prefix of any behavior"
  | Extension_exists _ ->
      Format.pp_print_string ppf
        "claimed doomed prefix extends to a property-satisfying behavior"
  | Not_an_extension _ ->
      Format.pp_print_string ppf
        "claimed extension does not start with the given prefix"
  | Inconsistent_triple { sat; rl; rs } ->
      Format.fprintf ppf
        "Theorem 4.7 violated: sat=%b but rl=%b ∧ rs=%b" sat rl rs

(* Membership of a behavior in the property, decided independently of the
   automata pipeline the checkers use: formulas go through the direct
   lasso semantics (no Büchi translation), automata through [Buchi.member]
   (lasso simulation, no complementation). An error in the translation or
   complementation therefore cannot certify its own output. *)
let property_holds p x =
  match p with
  | Relative.Ltl { formula; labeling } ->
      Rl_ltl.Semantics.satisfies ~labeling x formula
  | Relative.Auto pb -> Buchi.member pb x

let prefix_in_system ~system w =
  List.fold_left
    (fun states a ->
      List.sort_uniq compare
        (List.concat_map (fun q -> Buchi.successors system q a) states))
    (Buchi.initial system) (Word.to_list w)
  <> []

let counterexample ~system p x =
  if not (Buchi.member system x) then Error (Not_in_system x)
  else if property_holds p x then Error (Satisfies_property x)
  else Ok ()

let doomed_prefix ?budget ~system p w =
  if not (prefix_in_system ~system w) then Error (Prefix_not_in_system w)
  else
    match Relative.witness_extension ?budget ~system p w with
    | Some x -> Error (Extension_exists { prefix = w; extension = x })
    | None -> Ok ()

let extension ~system p ~prefix x =
  if not (Word.equal (Lasso.prefix x (Word.length prefix)) prefix) then
    Error (Not_an_extension { prefix; extension = x })
  else if not (Buchi.member system x) then Error (Not_in_system x)
  else if not (property_holds p x) then Error (Violates_property x)
  else Ok ()

type triple = { sat : bool; rl : bool; rs : bool }

(* The three legs of a Theorem 4.7 full verdict are independent checks on
   the same inputs; with [?pool] they fan out across its domains
   ([Pool.parfan]), each leg running its own inner phases serially (nested
   parallel regions fall back to inline execution). The phase labels on a
   shared budget are the only thing the legs race on — verdicts and the
   exhausted-or-not outcome stay deterministic because each leg's work is
   itself deterministic. *)
let verdict_triple ?budget ?pool ~system p =
  let legs =
    [
      (fun () -> Result.is_ok (Relative.satisfies ?budget ?pool ~system p));
      (fun () ->
        Result.is_ok (Relative.is_relative_liveness ?budget ?pool ~system p));
      (fun () ->
        Result.is_ok (Relative.is_relative_safety ?budget ?pool ~system p));
    ]
  in
  match
    match pool with
    | Some p when Rl_engine_kernel.Pool.size p > 1 ->
        Rl_engine_kernel.Pool.parfan p legs
    | _ -> List.map (fun leg -> leg ()) legs
  with
  | [ sat; rl; rs ] -> { sat; rl; rs }
  | _ -> assert false

let consistent t = t.sat = (t.rl && t.rs)

let check_triple t =
  if consistent t then Ok ()
  else Error (Inconsistent_triple { sat = t.sat; rl = t.rl; rs = t.rs })
