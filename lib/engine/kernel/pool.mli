(** A fixed-size pool of worker domains for the parallel checking engine.

    The PSPACE deciders spend their time in embarrassingly parallel
    inner steps — expanding an antichain frontier, enumerating the rank
    successors of a complementation level, running the independent legs of
    a Theorem 4.7 full verdict. This pool runs those steps across
    [Domain]s while keeping every {e observable} result deterministic.

    {2 Shape}

    A pool of size [n] owns [n - 1] long-lived worker domains (size 1 owns
    none and runs everything inline). A parallel region hands every member
    — the calling domain included — one job closure; inside it, members
    claim chunks of the index space from a shared atomic cursor, so fast
    members steal work from slow ones. Between regions the workers sleep
    on a condition variable.

    {2 Determinism contract}

    {!parmap} returns results positionally: [parmap p f xs] is
    extensionally [Array.map f xs] whenever [f] is pure. The deciders
    built on it keep all shared-state mutation (antichain insertion,
    state interning, budget ticking, witness selection) on the calling
    domain in a fixed order, so verdicts, witnesses and exit codes are
    byte-identical for every [--jobs] value. Nested parallel regions —
    a task that calls back into its own pool — run inline serially, which
    both preserves that contract and makes deadlock impossible.

    {2 Adaptive serial cutoff}

    Waking the workers costs tens of microseconds per region, so a
    frontier whose whole expansion is cheaper than that runs {e slower}
    under [--jobs N] than serially. {!parmap} therefore probes: it runs
    the first couple of items on the calling domain, projects the
    region's total serial cost from their timing, and fans the remainder
    out only when the projection reaches the pool's cutoff (µs). Since
    results are positional and the probe covers the lowest indices, the
    observable output — values and which exception surfaces — is
    unchanged either way. A cutoff of [0] disables the probe (always
    parallel); [max_int] makes the pool fully serial — it spawns no
    workers at all, since even parked domains tax every minor collection
    with a stop-the-world rendezvous. The default is read from the
    [RLCHECK_PAR_CUTOFF] environment variable (microseconds), falling
    back to [1_000] µs — or to [max_int] when the host reports a single
    hardware thread, where fan-out never pays. {!parfan} is exempt from
    the probe: its thunks are whole independent sub-checks, and probing
    the first serially would serialize an entire leg.

    {2 Worker death and healing}

    A worker whose job closure raises — a defect, or the injected
    {!Fault.Pool_domain_death} — retires: it decrements the region's
    barrier {e first} (the joining caller never deadlocks), marks its
    slot dead, and lets its domain exit. The region's results stay
    byte-identical to the fault-free run: slots the dead worker claimed
    but never filled are recomputed serially by the caller. Later
    regions fan out across the survivors; with zero survivors every
    region runs serially on the caller — the floor of the service's
    degradation ladder. {!heal} respawns dead workers between regions,
    and {!degraded} reports whether any slots are currently dead. *)

type t

(** [create ?jobs ?cutoff ()] is a pool of [jobs] members ([jobs - 1]
    spawned domains plus the caller). [jobs <= 0] means
    [Domain.recommended_domain_count ()]; the default is [1], a serial
    pool with no spawned domains. [cutoff] overrides the adaptive serial
    cutoff in µs of projected work ([0] = always parallel, [max_int] =
    a fully serial pool regardless of [jobs]); it defaults to
    [RLCHECK_PAR_CUTOFF] when set, else [1_000] µs on multicore hosts
    and [max_int] on single-core ones. *)
val create : ?jobs:int -> ?cutoff:int -> unit -> t

(** The number of members, caller included; [1] means serial. *)
val size : t -> int

(** The pool's adaptive serial cutoff in µs of projected work. *)
val cutoff : t -> int

(** [Domain.recommended_domain_count ()] — the meaning of [--jobs 0]. *)
val recommended : unit -> int

(** Spawned workers currently serving (excludes the caller); a fresh
    pool of size [n] has [n - 1]. *)
val alive : t -> int

(** [degraded p] — some worker slots are dead; regions still complete
    (and stay correct), just with less parallelism. *)
val degraded : t -> bool

(** Workers lost since creation (cumulative, survives healing). *)
val deaths : t -> int

(** Workers respawned by {!heal} since creation. *)
val heals : t -> int

(** [heal p] respawns every dead worker. Call between regions only (the
    daemon heals between requests); concurrent regions on other domains
    are not supported during a heal. *)
val heal : t -> unit

(** [try_heal p] is {!heal} made safe for a pool shared across handler
    threads: it claims the pool's region slot first (so the respawn
    cannot overlap a parallel region on another thread — concurrent
    regions run inline serially meanwhile) and returns [false] without
    healing when a region currently holds the slot. The daemon calls it
    after each batch; a skipped heal is retried after the next one. *)
val try_heal : t -> bool

(** [shutdown p] wakes the workers, asks them to exit, and joins them.
    Idempotent. A pool must not be used after shutdown. *)
val shutdown : t -> unit

(** [with_pool ?jobs ?cutoff f] runs [f] on a fresh pool and shuts it
    down afterwards, also on exceptions. *)
val with_pool : ?jobs:int -> ?cutoff:int -> (t -> 'a) -> 'a

(** [parmap p f xs] maps [f] over [xs] on all members of [p] and returns
    the results in input order. If any application raises, the region
    stops handing out further work, waits for the in-flight chunks, and
    re-raises the recorded exception of least index — the same exception
    a serial left-to-right map would have surfaced first whenever [f]'s
    failures are deterministic. Safe to call from inside a pool task
    (runs inline serially). *)
val parmap : t -> ('a -> 'b) -> 'a array -> 'b array

(** [run_members p body] claims the pool's region slot and runs
    [body member] once on every live member — the caller as member [0],
    each live worker under its own member index in [1 .. size-1] —
    returning [true] after all of them finish. Returns [false] without
    running anything when the pool is serial ([size p = 1]) or another
    region holds the slot (nested call); the caller then falls back to
    its serial path. This is the primitive beneath the work-stealing
    engine: there is no index space, no positional result and no repair
    pass, so the body must coordinate through its own shared structures,
    tolerate members that die mid-job (the join barrier still
    completes), and catch its own exceptions — an escaping worker-side
    exception retires that worker, and a caller-side one is swallowed by
    the barrier discipline. *)
val run_members : t -> (int -> unit) -> bool

(** [parfan p thunks] runs independent sub-checks concurrently and
    returns their results in order; exceptions behave as in {!parmap}.
    Thunks that must not be abandoned on a sibling's failure should
    return a [result] instead of raising. *)
val parfan : t -> (unit -> 'a) list -> 'a list
