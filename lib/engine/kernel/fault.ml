(* Deterministic fault injection: named points, seeded schedules.

   Probes run on arbitrary domains (the pool-death probe runs on worker
   domains, the budget probe wherever a budget is published), so the
   per-point state sits behind one mutex. That lock is taken only when a
   schedule is armed — the disarmed fast path is a single read of
   [armed_flag] — and chaos runs are exactly the runs where a little
   extra synchronization is the point, not a problem.

   Determinism: each point owns a split PRNG stream derived from the
   configured seed, advanced once per probe. The firing pattern for a
   point is therefore a function of (seed, rate, probe index) only;
   adding probe sites for one point cannot shift another point's
   schedule. Under a multi-domain pool the *interleaving* of probes is
   scheduler-dependent, but the per-point decision sequence is not,
   which is what the chaos suites pin down. *)

type point =
  | Pool_domain_death
  | Budget_contention
  | Cache_miss_storm
  | Malformed_input
  | Deadline_expiry

exception Injected of point

let all =
  [
    Pool_domain_death;
    Budget_contention;
    Cache_miss_storm;
    Malformed_input;
    Deadline_expiry;
  ]

let name = function
  | Pool_domain_death -> "pool_domain_death"
  | Budget_contention -> "budget_contention"
  | Cache_miss_storm -> "cache_miss_storm"
  | Malformed_input -> "malformed_input"
  | Deadline_expiry -> "deadline_expiry"

let of_name s = List.find_opt (fun p -> String.equal (name p) s) all
let index p = match p with
  | Pool_domain_death -> 0
  | Budget_contention -> 1
  | Cache_miss_storm -> 2
  | Malformed_input -> 3
  | Deadline_expiry -> 4

let npoints = List.length all

type slot = {
  mutable rate : float; (* 0 = never; the disarmed value *)
  mutable rng : Rl_prelude.Prng.t;
  mutable probed : int;
  mutable fired : int;
}

let fresh_slot seed i =
  {
    rate = 0.;
    (* one independent stream per point, derived from the seed *)
    rng = Rl_prelude.Prng.create ((seed * 31) + i);
    probed = 0;
    fired = 0;
  }

let slots = Array.init npoints (fresh_slot 0)
let mutex = Mutex.create ()
let armed_flag = ref false

(* The env schedule loads on the first probe, so every process — the
   daemon, the CLI, a bare test executable under a chaos CI job — honors
   RLCHECK_FAULT without an init call. An explicit [configure]/[reset]
   marks the env as consumed: programmatic schedules win. *)
let env_loaded = ref false

let configure ?(seed = 0) rates =
  env_loaded := true;
  Mutex.lock mutex;
  Array.iteri (fun i _ -> slots.(i) <- fresh_slot seed i) slots;
  List.iter
    (fun (p, rate) ->
      if not (rate >= 0. && rate <= 1.) then begin
        Mutex.unlock mutex;
        invalid_arg
          (Printf.sprintf "Fault.configure: rate %g for %s not in [0,1]" rate
             (name p))
      end;
      slots.(index p).rate <- rate)
    rates;
  armed_flag := List.exists (fun (_, r) -> r > 0.) rates;
  Mutex.unlock mutex

let reset () = configure []

let configure_from_env () =
  env_loaded := true;
  match Sys.getenv_opt "RLCHECK_FAULT" with
  | None | Some "" -> ()
  | Some spec ->
      let seed = ref 0 and rates = ref [] in
      String.split_on_char ',' spec
      |> List.iter (fun field ->
             match String.index_opt field '=' with
             | None ->
                 invalid_arg
                   (Printf.sprintf
                      "RLCHECK_FAULT: expected name=value, got %S" field)
             | Some eq -> (
                 let k = String.trim (String.sub field 0 eq) in
                 let v =
                   String.trim
                     (String.sub field (eq + 1) (String.length field - eq - 1))
                 in
                 if String.equal k "seed" then
                   match int_of_string_opt v with
                   | Some s -> seed := s
                   | None ->
                       invalid_arg
                         (Printf.sprintf "RLCHECK_FAULT: bad seed %S" v)
                 else
                   match (of_name k, float_of_string_opt v) with
                   | Some p, Some rate -> rates := (p, rate) :: !rates
                   | None, _ ->
                       invalid_arg
                         (Printf.sprintf
                            "RLCHECK_FAULT: unknown injection point %S \
                             (known: %s)"
                            k
                            (String.concat ", " (List.map name all)))
                   | _, None ->
                       invalid_arg
                         (Printf.sprintf "RLCHECK_FAULT: bad rate %S for %s" v
                            k)));
      configure ~seed:!seed (List.rev !rates)

let armed () =
  if not !env_loaded then configure_from_env ();
  !armed_flag

let should_fire p =
  if not (armed ()) then false
  else begin
    Mutex.lock mutex;
    let s = slots.(index p) in
    s.probed <- s.probed + 1;
    let hit = s.rate > 0. && Rl_prelude.Prng.float s.rng < s.rate in
    if hit then s.fired <- s.fired + 1;
    Mutex.unlock mutex;
    hit
  end

let fire p = if should_fire p then raise (Injected p)

let read f p =
  Mutex.lock mutex;
  let v = f slots.(index p) in
  Mutex.unlock mutex;
  v

let fired p = read (fun s -> s.fired) p
let probes p = read (fun s -> s.probed) p
