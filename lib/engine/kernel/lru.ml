(* Hash table + intrusive doubly-linked recency list; head = most
   recently used, tail = eviction victim. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable capacity : int;
  mutable evicted : int;
}

let create ~capacity () =
  { table = Hashtbl.create 64; head = None; tail = None; capacity; evicted = 0 }

let length t = Hashtbl.length t.table
let capacity t = t.capacity
let evictions t = t.evicted

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      touch t n;
      Some n.value

let evict_one t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evicted <- t.evicted + 1

let trim t =
  if t.capacity > 0 then
    while Hashtbl.length t.table > t.capacity do
      evict_one t
    done

let put t k v =
  (match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      touch t n
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n);
  trim t

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k;
      true

let set_capacity t n =
  t.capacity <- n;
  trim t

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.evicted <- 0

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
