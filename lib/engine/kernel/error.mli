(** The typed error layer of the checking engine.

    One variant covers every way a check can fail to produce a verdict, so
    that no stray [Invalid_argument], [Petri.Unbounded] or
    [Ts_format.Syntax_error] leaks across a library boundary. Each
    constructor maps to a documented [rlcheck] exit code (see
    {!exit_code}):

    - [0] — the property holds;
    - [1] — the property fails (with a certified witness);
    - [2] — usage or input error ([Parse_error], [Unbounded_net],
      [Internal]);
    - [3] — no conclusion transfers (abstraction verdict [`Unknown]);
    - [4] — budget exhausted ([Budget_exhausted]). *)

type t =
  | Parse_error of { file : string option; line : int; msg : string }
      (** a malformed system or formula; [line] is 1-based, [0] when the
          error has no meaningful position *)
  | Unbounded_net of { place : string; bound : int }
      (** Petri-net reachability exceeded [bound] tokens in [place] *)
  | Budget_exhausted of Budget.exhaustion
      (** a resource budget ran out mid-check; partial statistics inside *)
  | Internal of string
      (** an invariant violation surfaced as a clean message (e.g. an
          alphabet mismatch between a system and a property automaton) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** The [rlcheck] exit code for this error: [4] for {!Budget_exhausted},
    [2] otherwise. *)
val exit_code : t -> int

(** [protect ?handler f] runs [f ()], converting engine exceptions into
    typed errors: {!Budget.Exhausted} becomes [Budget_exhausted] and
    [Invalid_argument] becomes [Internal]. [handler] may translate
    further domain exceptions (return [None] to re-raise). *)
val protect : ?handler:(exn -> t option) -> (unit -> 'a) -> ('a, t) result
