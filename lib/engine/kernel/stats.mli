(** Always-on engine counters, phase timers, and GC tuning.

    The counters are global [Atomic]s bumped from the hot paths — one
    atomic add per antichain event — so they are on unconditionally and
    [rlcheck --stats] is purely a reporting flag. GC behavior is read as
    deltas of [Gc.quick_stat] between two {!snapshot}s; [quick_stat]
    never forces a collection, so probing is itself allocation-free.
    Counters are monotonic for the process lifetime: callers wanting a
    per-run figure take a snapshot before and after and {!diff} them. *)

(** {1 Hot-path counters} *)

(** One antichain node accepted (inserted into the antichain). *)
val incr_nodes : unit -> unit

(** One candidate discarded because a stored node subsumes it. *)
val incr_antichain_hits : unit -> unit

(** One stored node evicted by a newly accepted subsuming node. *)
val incr_evictions : unit -> unit

(** [note_arena_words w] raises the recorded arena high-water mark to
    [w] if larger (max-merge across engines and calls). *)
val note_arena_words : int -> unit

(** One successful steal by a work-stealing member (it took a node from
    another member's deque). *)
val incr_steals : unit -> unit

(** One parking episode: a member found every deque empty and spun or
    slept until work (or quiescence) appeared. *)
val incr_parks : unit -> unit

(** One contended antichain-shard lock acquisition ([Mutex.try_lock]
    failed and the member had to block). *)
val incr_shard_contention : unit -> unit

(** [note_domain_gc ~before ~after] folds one worker domain's
    [Gc.quick_stat] delta into the process-wide accumulators that
    {!snapshot} adds to the calling domain's own figures. [quick_stat]
    is domain-local, so without this a [--jobs N] run would report only
    the main domain's allocation. The pool calls it around each worker's
    share of a job; thread-safe. *)
val note_domain_gc : before:Gc.stat -> after:Gc.stat -> unit

(** {1 Phase timers} *)

(** [record_phase name seconds] adds one timed run of phase [name].
    Called by [Budget.with_phase]; thread-safe. *)
val record_phase : string -> float -> unit

(** [phases ()] is [(name, total_seconds, runs)] per phase, most
    expensive first. *)
val phases : unit -> (string * float * int) list

(** {1 Snapshots} *)

type snapshot = {
  wall : float;  (** [Unix.gettimeofday] at capture; elapsed in a diff *)
  nodes : int;
  antichain_hits : int;
  evictions : int;
  arena_high_water_words : int;
  steals : int;  (** work-stealing: nodes taken from another member *)
  parks : int;  (** work-stealing: empty-deque parking episodes *)
  shard_contention : int;  (** contended antichain-shard acquisitions *)
  sim_hits : int;  (** {!Simcache} hits *)
  sim_misses : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

val snapshot : unit -> snapshot

(** [diff ~before ~after] subtracts fieldwise; [arena_high_water_words]
    is a peak, not a rate, and keeps [after]'s value. *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** Minor-heap words allocated per explored node — the zero-allocation
    evidence figure ([0.] when no nodes were explored). *)
val minor_words_per_node : snapshot -> float

(** {1 Reporting} *)

(** Human-readable table (includes the phase timings). *)
val pp_human : Format.formatter -> snapshot -> unit

(** [to_json ?extra s] is a single-line JSON object, tagged
    ["rlcheck_stats":1], with the phase table inlined. [extra] prepends
    literal key/value pairs — values must already be valid JSON. *)
val to_json : ?extra:(string * string) list -> snapshot -> string

(** {1 GC tuning} *)

(** [gc_tune ()] applies the measured engine defaults (4M-word minor
    heap, space_overhead 200) unless the [RLCHECK_GC] environment
    variable overrides them: ["off"] leaves the runtime untouched;
    ["minor=<words>,space_overhead=<percent>"] overrides field-wise.
    Call once per domain — [Gc.set] minor-heap sizing is per-domain. *)
val gc_tune : unit -> unit
