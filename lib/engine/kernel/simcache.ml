(* Fingerprint-keyed memo table for simulation preorders.

   Computing a simulation preorder is polynomial but not free, and the
   deciders ask for the preorder of the *same* automaton repeatedly: the
   pre-language NFA of a system appears once per Theorem 4.7 leg, the
   property automaton once per transfer check, and the bench harness hits
   every family several times. The cache keys on a structural fingerprint
   (a digest of the automaton's full transition structure, computed by the
   caller), so two structurally identical automata — even rebuilt from
   scratch — share one computation.

   The payload is the representation-neutral form of a preorder: one
   bitset row per state, [row.(q)] holding the states related to [q].
   This layer deliberately knows nothing about NFAs or Büchi automata —
   the kernel sits below the automata libraries — so the translation to
   and from concrete automata lives in [Rl_automata.Preorder].

   A mutex guards the table: deciders running under [Pool] may race on
   lookups. Entries are immutable once inserted, so readers outside the
   critical section can use a returned row array freely. *)

type key = string

type entry = Rl_prelude.Bitset.t array

let table : (key, entry) Hashtbl.t = Hashtbl.create 64

let mutex = Mutex.create ()

let hits = ref 0

let misses = ref 0

let find_or_compute key compute =
  Mutex.lock mutex;
  match Hashtbl.find_opt table key with
  | Some rows ->
      incr hits;
      Mutex.unlock mutex;
      rows
  | None ->
      incr misses;
      Mutex.unlock mutex;
      (* Compute outside the lock: preorder refinement can be expensive
         and must not serialize unrelated deciders. A racing duplicate
         computation is deterministic, so last-write-wins is harmless. *)
      let rows = compute () in
      Mutex.lock mutex;
      Hashtbl.replace table key rows;
      Mutex.unlock mutex;
      rows

let stats () =
  Mutex.lock mutex;
  let s = (!hits, !misses, Hashtbl.length table) in
  Mutex.unlock mutex;
  s

let clear () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  hits := 0;
  misses := 0;
  Mutex.unlock mutex
