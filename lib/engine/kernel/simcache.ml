(* Fingerprint-keyed memo table for simulation preorders.

   Computing a simulation preorder is polynomial but not free, and the
   deciders ask for the preorder of the *same* automaton repeatedly: the
   pre-language NFA of a system appears once per Theorem 4.7 leg, the
   property automaton once per transfer check, and a long-running daemon
   sees the same models resubmitted across requests. The cache keys on a
   structural fingerprint (a digest of the automaton's full transition
   structure, computed by the caller), so two structurally identical
   automata — even rebuilt from scratch — share one computation.

   The payload is the representation-neutral form of a preorder: one
   bitset row per state, [row.(q)] holding the states related to [q].
   This layer deliberately knows nothing about NFAs or Büchi automata —
   the kernel sits below the automata libraries — so the translation to
   and from concrete automata lives in [Rl_automata.Preorder].

   The table is bounded: a checking service that memoizes every distinct
   model a client ever sent would let one hostile batch OOM the daemon,
   so entries beyond the capacity (default 512, env
   RLCHECK_SIMCACHE_CAP) are evicted least-recently-used. Eviction costs
   only recomputation — correctness never depends on a hit, and the
   cache-miss-storm injection point exercises exactly that.

   A mutex guards the table: deciders running under [Pool] may race on
   lookups. Entries are immutable once inserted, so readers outside the
   critical section can use a returned row array freely. *)

type key = string

type entry = Rl_prelude.Bitset.t array

let default_capacity = 512

let capacity_from_env () =
  match Sys.getenv_opt "RLCHECK_SIMCACHE_CAP" with
  | None -> default_capacity
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None ->
          invalid_arg
            "RLCHECK_SIMCACHE_CAP must be an integer number of entries \
             (<= 0 = unbounded)")

let table : (key, entry) Lru.t = Lru.create ~capacity:(capacity_from_env ()) ()

let mutex = Mutex.create ()

let hits = ref 0

let misses = ref 0

let invalidations = ref 0

(* Key observers, for the service's incremental re-check: a decide wants
   the set of fingerprints it touches so the keys can be evicted when
   the model is edited away. Observers are global — a decide running
   concurrently on another thread is observed too — but over-recording
   is harmless: keys are content-addressed, so removing a live entry
   only ever costs a recomputation. Callbacks run under the table mutex
   and must not call back into this module. *)
let observers : (key -> unit) list ref = ref []

let observe key = List.iter (fun f -> f key) !observers

let with_observer f body =
  Mutex.lock mutex;
  observers := f :: !observers;
  Mutex.unlock mutex;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock mutex;
      observers := List.filter (fun g -> g != f) !observers;
      Mutex.unlock mutex)
    body

let find_or_compute key compute =
  (* the cache-miss-storm injection point: pretend the entry was evicted
     and recompute — the slow path must stay correct under a cold cache *)
  let storm =
    Fault.armed () && Fault.should_fire Fault.Cache_miss_storm
  in
  Mutex.lock mutex;
  observe key;
  match if storm then None else Lru.find table key with
  | Some rows ->
      incr hits;
      Mutex.unlock mutex;
      rows
  | None ->
      incr misses;
      Mutex.unlock mutex;
      (* Compute outside the lock: preorder refinement can be expensive
         and must not serialize unrelated deciders. A racing duplicate
         computation is deterministic, so last-write-wins is harmless. *)
      let rows = compute () in
      Mutex.lock mutex;
      Lru.put table key rows;
      Mutex.unlock mutex;
      rows

(* Targeted invalidation, for the service's incremental re-check: when a
   client resubmits an edited model, the entries fingerprinted from the
   old version's reachable structure are dead weight — they can never be
   hit again (keys are content-addressed), but until evicted they hold
   capacity hostage. Removing an entry that a concurrent decider already
   obtained is harmless: returned rows stay valid (immutable), and a
   racing re-request just recomputes. *)
let remove key =
  Mutex.lock mutex;
  if Lru.remove table key then incr invalidations;
  Mutex.unlock mutex

let invalidated () =
  Mutex.lock mutex;
  let n = !invalidations in
  Mutex.unlock mutex;
  n

let stats () =
  Mutex.lock mutex;
  let s = (!hits, !misses, Lru.length table) in
  Mutex.unlock mutex;
  s

let evictions () =
  Mutex.lock mutex;
  let e = Lru.evictions table in
  Mutex.unlock mutex;
  e

let capacity () =
  Mutex.lock mutex;
  let c = Lru.capacity table in
  Mutex.unlock mutex;
  c

let set_capacity n =
  Mutex.lock mutex;
  Lru.set_capacity table n;
  Mutex.unlock mutex

let clear () =
  Mutex.lock mutex;
  Lru.clear table;
  hits := 0;
  misses := 0;
  invalidations := 0;
  Mutex.unlock mutex
