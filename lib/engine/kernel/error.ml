type t =
  | Parse_error of { file : string option; line : int; msg : string }
  | Unbounded_net of { place : string; bound : int }
  | Budget_exhausted of Budget.exhaustion
  | Internal of string

let pp ppf = function
  | Parse_error { file; line; msg } -> (
      match (file, line) with
      | Some f, l when l > 0 -> Format.fprintf ppf "%s:%d: %s" f l msg
      | Some f, _ -> Format.fprintf ppf "%s: %s" f msg
      | None, l when l > 0 -> Format.fprintf ppf "line %d: %s" l msg
      | None, _ -> Format.pp_print_string ppf msg)
  | Unbounded_net { place; bound } ->
      Format.fprintf ppf
        "net is unbounded at place %s (try --bound; current bound %d)" place
        bound
  | Budget_exhausted e -> Budget.pp_exhaustion ppf e
  | Internal msg -> Format.pp_print_string ppf msg

let to_string e = Format.asprintf "%a" pp e
let exit_code = function Budget_exhausted _ -> 4 | _ -> 2

let protect ?(handler = fun _ -> None) f =
  try Ok (f ()) with
  | Budget.Exhausted e -> Error (Budget_exhausted e)
  | Invalid_argument msg -> Error (Internal msg)
  | e -> ( match handler e with Some err -> Error err | None -> raise e)
