(* A fixed-size pool of long-lived domains.

   Spawning a domain costs far more than the work items we hand out, so the
   pool spawns its [size - 1] workers once and parks them on a condition
   variable. Each parallel region ([parmap]/[parfan]) publishes one job —
   a closure every member runs to completion — bumps an epoch, wakes the
   workers, and participates itself as member 0. Inside the job, members
   claim chunks of the index space from a shared atomic cursor, which is
   the work-stealing: fast members claim more chunks.

   Determinism is the callers' contract, made easy by the API shape:
   [parmap] returns results positionally, so as long as the job closures
   are pure (all shared-state mutation stays on the calling domain), the
   result is independent of the schedule. *)

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  mutex : Mutex.t;
  work : Condition.t; (* signals: a new epoch's job is available, or stop *)
  finished : Condition.t; (* signals: pending reached 0 *)
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable pending : int; (* workers still inside the current job *)
  mutable stop : bool;
  busy : bool Atomic.t;
      (* a parallel region is in flight; nested regions (a worker's task
         calling back into the pool) run inline serially, which cannot
         deadlock and keeps the schedule deterministic *)
}

let recommended () = Domain.recommended_domain_count ()

let worker_loop pool me =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.epoch = !my_epoch do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let f = Option.get pool.job in
      my_epoch := pool.epoch;
      Mutex.unlock pool.mutex;
      (* Jobs trap their own exceptions (see [parmap]); a raise here would
         mean a bug in the pool itself, and must not kill the worker. *)
      (try f me with _ -> ());
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.mutex
    end
  done

let create ?(jobs = 1) () =
  let size = if jobs <= 0 then recommended () else jobs in
  let size = max 1 size in
  let pool =
    {
      size;
      workers = [||];
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      stop = false;
      busy = Atomic.make false;
    }
  in
  if size > 1 then
    pool.workers <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let size pool = pool.size

let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [f] once on every member of the pool (the caller included) and wait
   for all of them. [f] must not raise. *)
let run_job pool f =
  Mutex.lock pool.mutex;
  pool.job <- Some f;
  pool.epoch <- pool.epoch + 1;
  pool.pending <- pool.size - 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (try f 0 with _ -> ());
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.finished pool.mutex
  done;
  pool.job <- None;
  Mutex.unlock pool.mutex

let parmap_array (type a b) pool (f : a -> b) (xs : a array) : b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else if
    pool.size = 1 || n = 1
    || not (Atomic.compare_and_set pool.busy false true)
  then Array.map f xs (* serial pool, singleton input, or nested region *)
  else
    Fun.protect ~finally:(fun () -> Atomic.set pool.busy false) @@ fun () ->
    let results : b option array = Array.make n None in
    let failures : exn option array = Array.make n None in
    let failed = Atomic.make false in
    let cursor = Atomic.make 0 in
    (* Small chunks so fast members steal work from slow ones, but not so
       small that the cursor becomes a contention point. *)
    let chunk = max 1 (n / (pool.size * 8)) in
    let body _member =
      let continue = ref true in
      while !continue do
        if Atomic.get failed then continue := false
        else begin
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= n then continue := false
          else
            for j = start to min n (start + chunk) - 1 do
              if not (Atomic.get failed) then (
                match f xs.(j) with
                | v -> results.(j) <- Some v
                | exception e ->
                    failures.(j) <- Some e;
                    Atomic.set failed true)
            done
        end
      done
    in
    run_job pool body;
    (* run_job is a barrier: all writes above happen-before this point. *)
    if Atomic.get failed then begin
      let first = ref None in
      for j = n - 1 downto 0 do
        match failures.(j) with Some e -> first := Some e | None -> ()
      done;
      match !first with Some e -> raise e | None -> assert false
    end
    else
      Array.map (function Some v -> v | None -> assert false) results

let parmap pool f xs = parmap_array pool f xs

let parfan pool thunks =
  match thunks with
  | [] -> []
  | [ th ] -> [ th () ]
  | _ -> Array.to_list (parmap_array pool (fun th -> th ()) (Array.of_list thunks))
