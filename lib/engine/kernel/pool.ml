(* A fixed-size pool of long-lived domains.

   Spawning a domain costs far more than the work items we hand out, so the
   pool spawns its [size - 1] workers once and parks them on a condition
   variable. Each parallel region ([parmap]/[parfan]) publishes one job —
   a closure every member runs to completion — bumps an epoch, wakes the
   workers, and participates itself as member 0. Inside the job, members
   claim chunks of the index space from a shared atomic cursor, which is
   the work-stealing: fast members claim more chunks.

   Determinism is the callers' contract, made easy by the API shape:
   [parmap] returns results positionally, so as long as the job closures
   are pure (all shared-state mutation stays on the calling domain), the
   result is independent of the schedule.

   Waking the workers costs tens of microseconds per region; on frontiers
   whose whole expansion is cheaper than that, parallelism is a pure
   slowdown (and on a single-core host it always is). [parmap] therefore
   carries an adaptive cutoff: it runs the first couple of items serially,
   projects the region's total serial cost from their timing, and only
   fans the remainder out when the projection clears the threshold.
   Because results are positional and the probe items are the lowest
   indices, the observable output — including which exception surfaces —
   is the same either way. *)

type t = {
  size : int;
  cutoff : int;
      (* adaptive-cutoff threshold in µs of projected serial work below
         which [parmap] stays serial; [0] = always parallel, [max_int] =
         never parallel (the default on single-core hosts) *)
  mutable workers : unit Domain.t array;
  mutex : Mutex.t;
  work : Condition.t; (* signals: a new epoch's job is available, or stop *)
  finished : Condition.t; (* signals: pending reached 0 *)
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable pending : int; (* workers still inside the current job *)
  mutable stop : bool;
  busy : bool Atomic.t;
      (* a parallel region is in flight; nested regions (a worker's task
         calling back into the pool) run inline serially, which cannot
         deadlock and keeps the schedule deterministic *)
}

let recommended () = Domain.recommended_domain_count ()

let default_cutoff () =
  match Sys.getenv_opt "RLCHECK_PAR_CUTOFF" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | _ ->
          invalid_arg
            "RLCHECK_PAR_CUTOFF must be a non-negative integer (microseconds \
             of projected serial work)")
  | None ->
      (* with a single hardware thread, fanning out never pays *)
      if recommended () < 2 then max_int else 1_000

let worker_loop pool me =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.epoch = !my_epoch do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let f = Option.get pool.job in
      my_epoch := pool.epoch;
      Mutex.unlock pool.mutex;
      (* Jobs trap their own exceptions (see [parmap]); a raise here would
         mean a bug in the pool itself, and must not kill the worker. *)
      (try f me with _ -> ());
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.mutex
    end
  done

let create ?(jobs = 1) ?cutoff () =
  let size = if jobs <= 0 then recommended () else jobs in
  let size = max 1 size in
  let cutoff =
    match cutoff with Some c -> max 0 c | None -> default_cutoff ()
  in
  (* A cutoff of max_int means no region will ever fan out, so spawn no
     workers at all: even parked domains tax every minor collection with
     a stop-the-world rendezvous, which is measurable on allocation-heavy
     checks (and ruinous on a single-core host). *)
  let size = if cutoff = max_int then 1 else size in
  let pool =
    {
      size;
      cutoff;
      workers = [||];
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      stop = false;
      busy = Atomic.make false;
    }
  in
  if size > 1 then
    pool.workers <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let size pool = pool.size
let cutoff pool = pool.cutoff

let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?jobs ?cutoff f =
  let pool = create ?jobs ?cutoff () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [f] once on every member of the pool (the caller included) and wait
   for all of them. [f] must not raise. *)
let run_job pool f =
  Mutex.lock pool.mutex;
  pool.job <- Some f;
  pool.epoch <- pool.epoch + 1;
  pool.pending <- pool.size - 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (try f 0 with _ -> ());
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.finished pool.mutex
  done;
  pool.job <- None;
  Mutex.unlock pool.mutex

(* Map items [start, n) across the pool, items [0, start) having already
   been computed into [results] by the caller. The caller holds
   [pool.busy]. *)
let run_parallel (type a b) pool (f : a -> b) (xs : a array)
    (results : b option array) start : b array =
  let n = Array.length xs in
  let failures : exn option array = Array.make n None in
  let failed = Atomic.make false in
  let cursor = Atomic.make start in
  (* Small chunks so fast members steal work from slow ones, but not so
     small that the cursor becomes a contention point. *)
  let chunk = max 1 ((n - start) / (pool.size * 8)) in
  let body _member =
    let continue = ref true in
    while !continue do
      if Atomic.get failed then continue := false
      else begin
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue := false
        else
          for j = start to min n (start + chunk) - 1 do
            if not (Atomic.get failed) then (
              match f xs.(j) with
              | v -> results.(j) <- Some v
              | exception e ->
                  failures.(j) <- Some e;
                  Atomic.set failed true)
          done
      end
    done
  in
  run_job pool body;
  (* run_job is a barrier: all writes above happen-before this point. *)
  if Atomic.get failed then begin
    let first = ref None in
    for j = n - 1 downto 0 do
      match failures.(j) with Some e -> first := Some e | None -> ()
    done;
    match !first with Some e -> raise e | None -> assert false
  end
  else Array.map (function Some v -> v | None -> assert false) results

(* The raw fan-out, no cutoff: used by [parfan], whose few thunks are
   whole independent sub-checks — probing the first one serially would
   serialize an entire leg. *)
let parmap_raw (type a b) pool (f : a -> b) (xs : a array) : b array =
  let n = Array.length xs in
  if
    n <= 1 || pool.size = 1
    || not (Atomic.compare_and_set pool.busy false true)
  then Array.map f xs (* serial pool, tiny input, or nested region *)
  else
    Fun.protect ~finally:(fun () -> Atomic.set pool.busy false) @@ fun () ->
    run_parallel pool f xs (Array.make n None) 0

let parmap_array (type a b) pool (f : a -> b) (xs : a array) : b array =
  let n = Array.length xs in
  if n <= 1 || pool.size = 1 || pool.cutoff = max_int then Array.map f xs
  else if pool.cutoff = 0 then parmap_raw pool f xs
  else begin
    (* probe: time a serial prefix and project the whole region's cost *)
    let results : b option array = Array.make n None in
    let k = min n 2 in
    let t0 = Unix.gettimeofday () in
    for j = 0 to k - 1 do
      results.(j) <- Some (f xs.(j))
    done;
    let elapsed_us = (Unix.gettimeofday () -. t0) *. 1e6 in
    let projected = elapsed_us /. float_of_int k *. float_of_int n in
    if
      projected < float_of_int pool.cutoff
      || not (Atomic.compare_and_set pool.busy false true)
    then begin
      (* below the cutoff (or nested region): finish serially *)
      for j = k to n - 1 do
        results.(j) <- Some (f xs.(j))
      done;
      Array.map (function Some v -> v | None -> assert false) results
    end
    else
      Fun.protect ~finally:(fun () -> Atomic.set pool.busy false) @@ fun () ->
      run_parallel pool f xs results k
  end

let parmap pool f xs = parmap_array pool f xs

let parfan pool thunks =
  match thunks with
  | [] -> []
  | [ th ] -> [ th () ]
  | _ -> Array.to_list (parmap_raw pool (fun th -> th ()) (Array.of_list thunks))
