(* A fixed-size pool of long-lived domains.

   Spawning a domain costs far more than the work items we hand out, so the
   pool spawns its [size - 1] workers once and parks them on a condition
   variable. Each parallel region ([parmap]/[parfan]) publishes one job —
   a closure every member runs to completion — bumps an epoch, wakes the
   workers, and participates itself as member 0. Inside the job, members
   claim chunks of the index space from a shared atomic cursor, which is
   the work-stealing: fast members claim more chunks.

   Determinism is the callers' contract, made easy by the API shape:
   [parmap] returns results positionally, so as long as the job closures
   are pure (all shared-state mutation stays on the calling domain), the
   result is independent of the schedule.

   Waking the workers costs tens of microseconds per region; on frontiers
   whose whole expansion is cheaper than that, parallelism is a pure
   slowdown (and on a single-core host it always is). [parmap] therefore
   carries an adaptive cutoff: it runs the first couple of items serially,
   projects the region's total serial cost from their timing, and only
   fans the remainder out when the projection clears the threshold.
   Because results are positional and the probe items are the lowest
   indices, the observable output — including which exception surfaces —
   is the same either way.

   Worker death. A long-running service cannot assume the workers are
   immortal: a job closure with a bug (or the injected
   [Fault.Pool_domain_death]) can blow a worker up. The failure-safe
   design has three legs, none of which can deadlock the joining caller:

   - Every exit path of a worker's job participation — normal return or
     any exception escaping the closure — decrements [pending] under the
     mutex before anything else, so [run_job]'s barrier always completes.
     An exception additionally retires the worker: it marks its slot
     dead, decrements [alive], and lets its domain terminate. Future
     regions simply fan out across the survivors ([run_job] sizes the
     barrier by [alive], not by the original worker count).
   - [run_parallel] repairs the barrier's results: slots a dead worker
     claimed but never filled are recomputed serially by the caller, so
     the region's output is byte-identical to the fault-free run.
   - [heal] respawns dead workers between regions; a pool that cannot be
     healed keeps degrading gracefully — with zero live workers every
     region runs serially on the caller, which is the documented floor of
     the degradation ladder. *)

type worker = { mutable domain : unit Domain.t option; mutable dead : bool }

type t = {
  size : int;
  cutoff : int;
      (* adaptive-cutoff threshold in µs of projected serial work below
         which [parmap] stays serial; [0] = always parallel, [max_int] =
         never parallel (the default on single-core hosts) *)
  workers : worker array;
  mutable alive : int; (* spawned workers still serving *)
  mutable deaths : int; (* workers lost since creation (cumulative) *)
  mutable heals : int; (* workers respawned by [heal] (cumulative) *)
  mutex : Mutex.t;
  work : Condition.t; (* signals: a new epoch's job is available, or stop *)
  finished : Condition.t; (* signals: pending reached 0 *)
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable pending : int; (* workers still inside the current job *)
  mutable stop : bool;
  busy : bool Atomic.t;
      (* a parallel region is in flight; nested regions (a worker's task
         calling back into the pool) run inline serially, which cannot
         deadlock and keeps the schedule deterministic *)
}

let recommended () = Domain.recommended_domain_count ()

let default_cutoff () =
  match Sys.getenv_opt "RLCHECK_PAR_CUTOFF" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | _ ->
          invalid_arg
            "RLCHECK_PAR_CUTOFF must be a non-negative integer (microseconds \
             of projected serial work)")
  | None ->
      (* with a single hardware thread, fanning out never pays *)
      if recommended () < 2 then max_int else 1_000

(* [start_epoch] is [pool.epoch] at spawn time: a worker respawned by
   [heal] must not mistake the regions it missed for a pending job. *)
let worker_loop pool me start_epoch =
  (* minor-heap sizing is per-domain: each worker applies the same
     tuning the calling domain got (RLCHECK_GC still opts out) *)
  Stats.gc_tune ();
  let my_epoch = ref start_epoch in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.epoch = !my_epoch do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      match pool.job with
      | None ->
          (* Stale epoch but no job in flight (a [heal]-respawned worker
             waking between regions): adopt the current epoch and park.
             Raising here would kill the domain with the mutex held and
             deadlock every future pool operation. *)
          my_epoch := pool.epoch;
          Mutex.unlock pool.mutex
      | Some f ->
          my_epoch := pool.epoch;
          Mutex.unlock pool.mutex;
          (* Any exception escaping the job closure — the injected domain
             death included — retires this worker. The pending decrement
             comes first and unconditionally: the barrier must complete
             even as the worker dies. *)
          (* quick_stat is domain-local: sample around the job body so
             the worker's allocation is folded into the shared Stats
             accumulators — without this, --stats under --jobs N would
             report the main domain only *)
          let g0 = Gc.quick_stat () in
          let death =
            match
              if Fault.armed () then Fault.fire Fault.Pool_domain_death;
              f me
            with
            | () -> None
            | exception e -> Some e
          in
          Stats.note_domain_gc ~before:g0 ~after:(Gc.quick_stat ());
          Mutex.lock pool.mutex;
          pool.pending <- pool.pending - 1;
          if pool.pending = 0 then Condition.signal pool.finished;
          (match death with
          | None -> ()
          | Some _ ->
              pool.workers.(me - 1).dead <- true;
              pool.alive <- pool.alive - 1;
              pool.deaths <- pool.deaths + 1;
              running := false);
          Mutex.unlock pool.mutex
    end
  done

let create ?(jobs = 1) ?cutoff () =
  let size = if jobs <= 0 then recommended () else jobs in
  let size = max 1 size in
  let cutoff =
    match cutoff with Some c -> max 0 c | None -> default_cutoff ()
  in
  (* A cutoff of max_int means no region will ever fan out, so spawn no
     workers at all: even parked domains tax every minor collection with
     a stop-the-world rendezvous, which is measurable on allocation-heavy
     checks (and ruinous on a single-core host). *)
  let size = if cutoff = max_int then 1 else size in
  let pool =
    {
      size;
      cutoff;
      workers = Array.init (size - 1) (fun _ -> { domain = None; dead = false });
      alive = 0;
      deaths = 0;
      heals = 0;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      stop = false;
      busy = Atomic.make false;
    }
  in
  Array.iteri
    (fun i w ->
      w.domain <- Some (Domain.spawn (fun () -> worker_loop pool (i + 1) 0)))
    pool.workers;
  pool.alive <- Array.length pool.workers;
  pool

let size pool = pool.size
let cutoff pool = pool.cutoff

let alive pool =
  Mutex.lock pool.mutex;
  let a = pool.alive in
  Mutex.unlock pool.mutex;
  a

let deaths pool =
  Mutex.lock pool.mutex;
  let d = pool.deaths in
  Mutex.unlock pool.mutex;
  d

let heals pool =
  Mutex.lock pool.mutex;
  let h = pool.heals in
  Mutex.unlock pool.mutex;
  h

let degraded pool = alive pool < Array.length pool.workers

(* Respawn dead workers. Must only be called between regions (the daemon
   heals between requests); a spawn failure leaves the remaining dead
   slots dead — the pool keeps running on the survivors. *)
let heal pool =
  Mutex.lock pool.mutex;
  Array.iteri
    (fun i w ->
      if w.dead then begin
        (* the old domain has exited; join reaps it promptly *)
        (match w.domain with Some d -> Domain.join d | None -> ());
        let epoch = pool.epoch in
        w.domain <-
          Some (Domain.spawn (fun () -> worker_loop pool (i + 1) epoch));
        w.dead <- false;
        pool.alive <- pool.alive + 1;
        pool.heals <- pool.heals + 1
      end)
    pool.workers;
  Mutex.unlock pool.mutex

(* Region-safe healing for a pool shared across service handler threads:
   [heal] alone must not run while another thread's parallel region is in
   flight, so this claims the region slot first. While we hold [busy],
   concurrent [parmap]s lose the CAS and run inline serially — correct
   either way. Returns [false] when the slot is taken; the caller just
   tries again after its next batch. *)
let try_heal pool =
  if Atomic.compare_and_set pool.busy false true then begin
    Fun.protect
      ~finally:(fun () -> Atomic.set pool.busy false)
      (fun () -> heal pool);
    true
  end
  else false

let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
            Domain.join d;
            w.domain <- None
        | None -> ())
      pool.workers
  end

let with_pool ?jobs ?cutoff f =
  let pool = create ?jobs ?cutoff () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [f] once on every live member of the pool (the caller included) and
   wait for all of them. The barrier is sized by [alive] at publication
   time: workers that died in earlier epochs have exited their loops and
   will never see this job. A worker dying *inside* this job still
   decrements [pending] on its way out, so the wait below always
   terminates. *)
let run_job pool f =
  Mutex.lock pool.mutex;
  pool.job <- Some f;
  pool.epoch <- pool.epoch + 1;
  pool.pending <- pool.alive;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (try f 0 with _ -> ());
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.finished pool.mutex
  done;
  pool.job <- None;
  Mutex.unlock pool.mutex

(* Map items [start, n) across the pool, items [0, start) having already
   been computed into [results] by the caller. The caller holds
   [pool.busy]. *)
let run_parallel (type a b) pool (f : a -> b) (xs : a array)
    (results : b option array) start : b array =
  let n = Array.length xs in
  let failures : exn option array = Array.make n None in
  let failed = Atomic.make false in
  let cursor = Atomic.make start in
  (* Small chunks so fast members steal work from slow ones, but not so
     small that the cursor becomes a contention point. *)
  let chunk = max 1 ((n - start) / (pool.size * 8)) in
  let body _member =
    let continue = ref true in
    while !continue do
      if Atomic.get failed then continue := false
      else begin
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue := false
        else begin
          (* the mid-map death probe: a worker that dies *here* has
             claimed [start, start+chunk) and will fill none of it — the
             repair pass below recomputes the orphaned slots *)
          if Fault.armed () then Fault.fire Fault.Pool_domain_death;
          for j = start to min n (start + chunk) - 1 do
            if not (Atomic.get failed) then (
              match f xs.(j) with
              | v -> results.(j) <- Some v
              | exception e ->
                  failures.(j) <- Some e;
                  Atomic.set failed true)
          done
        end
      end
    done
  in
  run_job pool body;
  (* run_job is a barrier: all writes above happen-before this point. *)
  if Atomic.get failed then begin
    let first = ref None in
    for j = n - 1 downto 0 do
      match failures.(j) with Some e -> first := Some e | None -> ()
    done;
    match !first with Some e -> raise e | None -> assert false
  end
  else begin
    (* Repair the barrier: any slot a dead worker (or a caller whose
       body the death fault aborted) claimed but never filled is
       recomputed here, serially — the region's output is independent of
       whether and when workers died. *)
    for j = 0 to n - 1 do
      if results.(j) = None then results.(j) <- Some (f xs.(j))
    done;
    Array.map (function Some v -> v | None -> assert false) results
  end

(* Hand the raw membership to a caller-supplied scheduler: [body member]
   runs once on every live member, member 0 being the caller. This is
   the work-stealing engine's entry point — unlike [parmap] there is no
   index space and no repair pass, so the body must tolerate members
   that die mid-job (the barrier itself always completes) and must
   catch its own exceptions (a caller-side raise is swallowed by
   [run_job]'s barrier discipline). Returns [false] without running
   anything when the pool is serial or a region is already in flight —
   the caller falls back to its serial path. *)
let run_members pool body =
  if pool.size = 1 || not (Atomic.compare_and_set pool.busy false true) then
    false
  else begin
    Fun.protect
      ~finally:(fun () -> Atomic.set pool.busy false)
      (fun () -> run_job pool body);
    true
  end

(* The raw fan-out, no cutoff: used by [parfan], whose few thunks are
   whole independent sub-checks — probing the first one serially would
   serialize an entire leg. *)
let parmap_raw (type a b) pool (f : a -> b) (xs : a array) : b array =
  let n = Array.length xs in
  if
    n <= 1 || pool.size = 1
    || not (Atomic.compare_and_set pool.busy false true)
  then Array.map f xs (* serial pool, tiny input, or nested region *)
  else
    Fun.protect ~finally:(fun () -> Atomic.set pool.busy false) @@ fun () ->
    run_parallel pool f xs (Array.make n None) 0

let parmap_array (type a b) pool (f : a -> b) (xs : a array) : b array =
  let n = Array.length xs in
  if n <= 1 || pool.size = 1 || pool.cutoff = max_int then Array.map f xs
  else if pool.cutoff = 0 then parmap_raw pool f xs
  else begin
    (* probe: time a serial prefix and project the whole region's cost *)
    let results : b option array = Array.make n None in
    let k = min n 2 in
    let t0 = Unix.gettimeofday () in
    for j = 0 to k - 1 do
      results.(j) <- Some (f xs.(j))
    done;
    let elapsed_us = (Unix.gettimeofday () -. t0) *. 1e6 in
    let projected = elapsed_us /. float_of_int k *. float_of_int n in
    if
      projected < float_of_int pool.cutoff
      || not (Atomic.compare_and_set pool.busy false true)
    then begin
      (* below the cutoff (or nested region): finish serially *)
      for j = k to n - 1 do
        results.(j) <- Some (f xs.(j))
      done;
      Array.map (function Some v -> v | None -> assert false) results
    end
    else
      Fun.protect ~finally:(fun () -> Atomic.set pool.busy false) @@ fun () ->
      run_parallel pool f xs results k
  end

let parmap pool f xs = parmap_array pool f xs

let parfan pool thunks =
  match thunks with
  | [] -> []
  | [ th ] -> [ th () ]
  | _ -> Array.to_list (parmap_raw pool (fun th -> th ()) (Array.of_list thunks))
