(** Resource budgets for the exponential decision procedures.

    Every hot loop of the toolchain — subset construction, Kupferman–Vardi
    complementation, Büchi products, Petri-net reachability, simplicity
    configuration search — sits on a PSPACE-complete foundation
    (Theorem 4.5) and can blow up on modestly sized inputs. A budget makes
    those loops interruptible: the loop calls {!tick} once per freshly
    explored state, and when a limit is hit the loop is abandoned with
    {!Exhausted} carrying the phase reached and the work done so far, so
    callers can return a typed [`Budget_exhausted] outcome with partial
    statistics instead of hanging or exhausting memory.

    A budget is a mutable accumulator shared by every phase of one check:
    the state count is global across phases, which is what a caller who
    asked for "at most [n] states of work" means. *)

type t

(** Everything known at the moment a budget ran out. *)
type exhaustion = {
  resource : [ `States | `Time ];  (** which limit was hit *)
  phase : string;  (** the phase the check was in, e.g. ["determinize pre(Lω)"] *)
  states_explored : int;  (** total states explored across all phases *)
  max_states : int option;  (** the state limit, if one was set *)
}

exception Exhausted of exhaustion

(** A shared budget with no limits. [tick] on it never raises; its
    statistics are meaningless (it is shared by every unbudgeted call). *)
val unlimited : t

(** [create ?max_states ?timeout ()] is a fresh budget allowing at most
    [max_states] freshly explored states and [timeout] seconds of wall
    clock (measured from this call). Omitted limits are infinite. *)
val create : ?max_states:int -> ?timeout:float -> unit -> t

(** [is_limited b] — [b] has at least one finite limit. *)
val is_limited : t -> bool

(** [tick b] records one freshly explored state.
    @raise Exhausted when a limit is exceeded. The wall clock is polled
    every 256 ticks, so deadline overruns are detected within 256 states
    of work. *)
val tick : t -> unit

(** [charge b n] records [n] states of work at once (used for linear
    passes over pre-built automata). *)
val charge : t -> int -> unit

(** [set_phase b name] labels the work done from now on; the label is
    reported in {!exhaustion} and in partial-progress statistics. *)
val set_phase : t -> string -> unit

(** [with_phase b name f] runs [f ()] under the phase label [name],
    restoring the previous label afterwards (also on exceptions). *)
val with_phase : t -> string -> (unit -> 'a) -> 'a

val states_explored : t -> int
val current_phase : t -> string

(** [remaining_states b] is how many more states may be explored
    ([None] when unlimited). *)
val remaining_states : t -> int option

val pp_exhaustion : Format.formatter -> exhaustion -> unit
