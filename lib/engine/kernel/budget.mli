(** Resource budgets for the exponential decision procedures.

    Every hot loop of the toolchain — subset construction, Kupferman–Vardi
    complementation, Büchi products, Petri-net reachability, simplicity
    configuration search — sits on a PSPACE-complete foundation
    (Theorem 4.5) and can blow up on modestly sized inputs. A budget makes
    those loops interruptible: the loop calls {!tick} once per freshly
    explored state, and when a limit is hit the loop is abandoned with
    {!Exhausted} carrying the phase reached and the work done so far, so
    callers can return a typed [`Budget_exhausted] outcome with partial
    statistics instead of hanging or exhausting memory.

    A budget is a mutable accumulator shared by every phase of one check:
    the state count is global across phases, which is what a caller who
    asked for "at most [n] states of work" means.

    Budgets are domain-safe: the state counter is an [Atomic], so several
    domains of a {!Rl_engine_kernel.Pool} may tick one budget concurrently
    and [--max-states] still bounds the {e total} cross-domain work. The
    first domain to exceed a limit publishes a single {!exhaustion} record;
    every later tick on any domain re-raises that same record, which
    cancels parallel workers promptly and keeps the report deterministic.
    Phase labels ({!set_phase}/{!with_phase}) are not synchronized — they
    must be changed from the coordinating domain only. *)

type t

(** Everything known at the moment a budget ran out. *)
type exhaustion = {
  resource : [ `States | `Time ];  (** which limit was hit *)
  phase : string;  (** the phase the check was in, e.g. ["determinize pre(Lω)"] *)
  states_explored : int;  (** total states explored across all phases *)
  max_states : int option;  (** the state limit, if one was set *)
}

exception Exhausted of exhaustion

(** A shared budget with no limits. [tick] on it never raises; its
    statistics are meaningless (it is shared by every unbudgeted call). *)
val unlimited : t

(** [create ?max_states ?timeout ()] is a fresh budget allowing at most
    [max_states] freshly explored states and [timeout] seconds of wall
    clock (measured from this call). Omitted limits are infinite. *)
val create : ?max_states:int -> ?timeout:float -> unit -> t

(** [is_limited b] — [b] has at least one finite limit. *)
val is_limited : t -> bool

(** [tick b] records one freshly explored state.
    @raise Exhausted when a limit is exceeded. The wall clock is polled
    every 256 ticks, so deadline overruns are detected within 256 states
    of work. *)
val tick : t -> unit

(** [charge b n] records [n] states of work at once (used for linear
    passes over pre-built automata). *)
val charge : t -> int -> unit

(** [poll b] does no accounting but notices a limit hit elsewhere: it
    re-raises a published exhaustion and occasionally polls the deadline.
    Worker domains call it at task boundaries so a budget tripped on one
    domain stops the others promptly.
    @raise Exhausted if the budget is already exhausted. *)
val poll : t -> unit

(** [cancelled b] — some domain has already exhausted [b] (no raise). *)
val cancelled : t -> bool

(** [cancel ?phase b resource] exhausts [b] from the outside: it
    publishes an exhaustion record (unless one is already published)
    without raising on the calling domain, so every later {!tick},
    {!poll} or {!flush} on any domain raises {!Exhausted}. This is the
    service watchdog's lever: when a request blows its wall-clock
    deadline, the watchdog cancels its budget and the abandoned check
    unwinds at its next cooperative point. [phase] labels the record
    when the budget has no phase of its own. *)
val cancel : ?phase:string -> t -> [ `States | `Time ] -> unit

(** {2 Batched per-domain ticking}

    Under parallel exploration, ticking the shared atomic counter once per
    state would serialize the domains on one cache line. A {!local} is a
    single-domain accumulator that publishes its count in batches of 64:
    one CAS per 64 states. The price is precision — a limit overrun is
    detected within [64 × domains] states of the limit — and that is the
    documented accuracy contract of [--max-states] under [--jobs]. *)

type local

(** [local b] is a fresh per-domain view of [b]. Never share a [local]
    between domains. *)
val local : t -> local

(** [tick_local l] records one state locally, publishing (and checking
    limits) every 64 ticks.
    @raise Exhausted when a publish detects an exceeded or cancelled
    budget. *)
val tick_local : local -> unit

(** [flush l] publishes any pending local ticks immediately and checks the
    limits (also checks for cancellation when nothing is pending). Call it
    when a worker finishes its slice of work so no ticks are lost.
    @raise Exhausted as {!tick_local}. *)
val flush : local -> unit

(** [set_phase b name] labels the work done from now on; the label is
    reported in {!exhaustion} and in partial-progress statistics. *)
val set_phase : t -> string -> unit

(** [with_phase b name f] runs [f ()] under the phase label [name],
    restoring the previous label afterwards (also on exceptions). *)
val with_phase : t -> string -> (unit -> 'a) -> 'a

val states_explored : t -> int
val current_phase : t -> string

(** [remaining_states b] is how many more states may be explored
    ([None] when unlimited). *)
val remaining_states : t -> int option

val pp_exhaustion : Format.formatter -> exhaustion -> unit
