type exhaustion = {
  resource : [ `States | `Time ];
  phase : string;
  states_explored : int;
  max_states : int option;
}

exception Exhausted of exhaustion

type t = {
  max_states : int option;
  deadline : float option; (* absolute, Unix.gettimeofday *)
  mutable states : int;
  mutable phase : string;
  mutable clock_check : int; (* ticks since the wall clock was last polled *)
}

let unlimited =
  { max_states = None; deadline = None; states = 0; phase = ""; clock_check = 0 }

let create ?max_states ?timeout () =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  { max_states; deadline; states = 0; phase = ""; clock_check = 0 }

let is_limited b = b.max_states <> None || b.deadline <> None

let exhaust b resource =
  raise
    (Exhausted
       {
         resource;
         phase = b.phase;
         states_explored = b.states;
         max_states = b.max_states;
       })

(* Polling the wall clock is a syscall; do it once per 256 ticks. *)
let clock_period = 256

let check_clock b =
  match b.deadline with
  | None -> ()
  | Some d ->
      b.clock_check <- b.clock_check + 1;
      if b.clock_check >= clock_period then begin
        b.clock_check <- 0;
        if Unix.gettimeofday () > d then exhaust b `Time
      end

let tick b =
  b.states <- b.states + 1;
  (match b.max_states with
  | Some m when b.states > m -> exhaust b `States
  | _ -> ());
  check_clock b

let charge b n =
  if n > 0 then begin
    b.states <- b.states + n;
    (match b.max_states with
    | Some m when b.states > m -> exhaust b `States
    | _ -> ());
    match b.deadline with
    | Some d when Unix.gettimeofday () > d -> exhaust b `Time
    | _ -> ()
  end

let set_phase b name = b.phase <- name

let with_phase b name f =
  let saved = b.phase in
  b.phase <- name;
  Fun.protect ~finally:(fun () -> b.phase <- saved) f

let states_explored b = b.states
let current_phase b = b.phase

let remaining_states b =
  Option.map (fun m -> max 0 (m - b.states)) b.max_states

let pp_exhaustion ppf e =
  let what =
    match e.resource with
    | `States -> (
        match e.max_states with
        | Some m -> Printf.sprintf "state limit %d" m
        | None -> "state limit")
    | `Time -> "time limit"
  in
  Format.fprintf ppf "%s reached%s after exploring %d states" what
    (if e.phase = "" then "" else Printf.sprintf " during %s" e.phase)
    e.states_explored
