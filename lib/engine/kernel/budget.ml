type exhaustion = {
  resource : [ `States | `Time ];
  phase : string;
  states_explored : int;
  max_states : int option;
}

exception Exhausted of exhaustion

type t = {
  max_states : int option;
  deadline : float option; (* absolute, Unix.gettimeofday *)
  states : int Atomic.t;
  tripped : exhaustion option Atomic.t;
      (* the first exhaustion recorded on this budget; once set, every
         subsequent tick on any domain re-raises it, which both cancels
         parallel workers promptly and keeps the reported record unique *)
  mutable phase : string; (* phase changes happen on the main domain only *)
  clock_check : int Atomic.t; (* ticks since the wall clock was last polled *)
}

let unlimited =
  {
    max_states = None;
    deadline = None;
    states = Atomic.make 0;
    tripped = Atomic.make None;
    phase = "";
    clock_check = Atomic.make 0;
  }

let create ?max_states ?timeout () =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  {
    max_states;
    deadline;
    states = Atomic.make 0;
    tripped = Atomic.make None;
    phase = "";
    clock_check = Atomic.make 0;
  }

let is_limited b = b.max_states <> None || b.deadline <> None

let exhaust b states resource =
  let e =
    {
      resource;
      phase = b.phase;
      states_explored = states;
      max_states = b.max_states;
    }
  in
  (* Only one exhaustion event per budget: the first domain to trip
     publishes its record; anyone racing in re-raises that same record. *)
  if Atomic.compare_and_set b.tripped None (Some e) then raise (Exhausted e)
  else
    match Atomic.get b.tripped with
    | Some first -> raise (Exhausted first)
    | None -> raise (Exhausted e)

let cancelled b = Atomic.get b.tripped <> None

(* External cancellation: the service watchdog publishes an exhaustion
   record from *outside* the checking code, so every subsequent
   tick/poll/flush on any domain raises and the abandoned check unwinds
   at its next cooperative point. Unlike [exhaust] this never raises on
   the cancelling domain — the watchdog is not the one doing the work —
   and it never overwrites a record the check already tripped itself. *)
let cancel ?(phase = "wall-clock deadline (watchdog)") b resource =
  let e =
    {
      resource;
      phase = (if b.phase = "" then phase else b.phase);
      states_explored = Atomic.get b.states;
      max_states = b.max_states;
    }
  in
  ignore (Atomic.compare_and_set b.tripped None (Some e))

let check_cancelled b =
  match Atomic.get b.tripped with
  | Some e -> raise (Exhausted e)
  | None -> ()

(* Polling the wall clock is a syscall; do it once per 256 ticks. *)
let clock_period = 256

let check_clock b =
  match b.deadline with
  | None -> ()
  | Some d ->
      if Atomic.fetch_and_add b.clock_check 1 >= clock_period then begin
        Atomic.set b.clock_check 0;
        if Unix.gettimeofday () > d then exhaust b (Atomic.get b.states) `Time
      end

let charge b n =
  if n > 0 then begin
    check_cancelled b;
    let total = Atomic.fetch_and_add b.states n + n in
    (match b.max_states with
    | Some m when total > m -> exhaust b total `States
    | _ -> ());
    match b.deadline with
    | Some d when Unix.gettimeofday () > d -> exhaust b total `Time
    | _ -> ()
  end

let tick b =
  check_cancelled b;
  let total = Atomic.fetch_and_add b.states 1 + 1 in
  (match b.max_states with
  | Some m when total > m -> exhaust b total `States
  | _ -> ());
  check_clock b

(* A cheap probe for worker domains that do work without exploring fresh
   states: notices a cancellation (or a blown deadline) without touching
   the shared state counter. *)
let poll b =
  check_cancelled b;
  check_clock b

(* Per-domain batched ticking: accumulate up to [batch] ticks locally and
   publish them with a single fetch_and_add, so contention on the shared
   counter is one CAS per [batch] states instead of one per state. *)

let batch = 64

type local = { budget : t; mutable pending : int }

let local b = { budget = b; pending = 0 }

(* The budget-contention injection point: widen the race window between
   domains publishing to the same budget by spinning briefly before the
   CAS. Verdicts must be unaffected — the chaos suites assert that. *)
let contention_stall () =
  if Fault.armed () && Fault.should_fire Fault.Budget_contention then
    for _ = 1 to 64 do
      Domain.cpu_relax ()
    done

let flush l =
  let b = l.budget in
  if l.pending = 0 then check_cancelled b
  else begin
    contention_stall ();
    let n = l.pending in
    l.pending <- 0;
    let total = Atomic.fetch_and_add b.states n + n in
    check_cancelled b;
    (match b.max_states with
    | Some m when total > m -> exhaust b total `States
    | _ -> ());
    match b.deadline with
    | Some d when Unix.gettimeofday () > d -> exhaust b total `Time
    | _ -> ()
  end

let tick_local l =
  l.pending <- l.pending + 1;
  if l.pending >= batch then flush l

let set_phase b name = b.phase <- name

let with_phase b name f =
  let saved = b.phase in
  b.phase <- name;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      b.phase <- saved;
      Stats.record_phase name (Unix.gettimeofday () -. t0))
    f

let states_explored b = Atomic.get b.states
let current_phase b = b.phase

let remaining_states b =
  Option.map (fun m -> max 0 (m - Atomic.get b.states)) b.max_states

let pp_exhaustion ppf e =
  let what =
    match e.resource with
    | `States -> (
        match e.max_states with
        | Some m -> Printf.sprintf "state limit %d" m
        | None -> "state limit")
    | `Time -> "time limit"
  in
  Format.fprintf ppf "%s reached%s after exploring %d states" what
    (if e.phase = "" then "" else Printf.sprintf " during %s" e.phase)
    e.states_explored
