(** A bounded least-recently-used map for the engine's cross-request
    caches.

    A long-running checking service cannot let its memo tables grow with
    the lifetime of the process: a hostile batch of thousands of distinct
    models would otherwise OOM the daemon through the very caches that
    make it fast. This is the eviction layer those caches share —
    {!Simcache} bounds its preorder table with it, and the service's
    parsed-model cache sits on it directly.

    Operations are O(1) (hash table + intrusive doubly-linked recency
    list). The structure is {e not} synchronized: callers that share an
    instance across domains must guard it with their own lock, as
    {!Simcache} does. *)

type ('k, 'v) t

(** [create ~capacity ()] is an empty cache holding at most [capacity]
    bindings; inserting beyond that evicts the least recently used.
    [capacity <= 0] means unbounded (no eviction ever). *)
val create : capacity:int -> unit -> ('k, 'v) t

(** [find t k] returns the binding and marks it most recently used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [put t k v] binds [k] (replacing any previous binding, which counts
    as a use), evicting the least recently used binding if the cache is
    over capacity afterwards. *)
val put : ('k, 'v) t -> 'k -> 'v -> unit

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

(** [remove t k] drops the binding for [k] if present; [true] iff a
    binding was dropped. Not counted as an eviction. *)
val remove : ('k, 'v) t -> 'k -> bool

(** [set_capacity t n] rebounds the cache, evicting down to [n] at once
    if it currently holds more ([n <= 0] = unbounded). *)
val set_capacity : ('k, 'v) t -> int -> unit

(** [evictions t] — bindings dropped by eviction since creation (or the
    last {!clear}); replacement of an existing key is not an eviction. *)
val evictions : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit

(** Most-recent-first snapshot of the keys, for tests and health
    reports. *)
val keys : ('k, 'v) t -> 'k list
