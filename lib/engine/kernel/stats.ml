(* Always-on counters and phase timers for the checking engine.

   The counters are global [Atomic]s bumped from the hot paths — one
   atomic add per antichain event is noise next to the bitset work the
   event represents, so they stay on unconditionally and [--stats] is
   purely a reporting flag. GC behavior is measured as deltas of
   [Gc.quick_stat] between two {!snapshot}s: [quick_stat] reads
   domain-local accumulators and never forces a collection, so the
   probe itself is cheap and allocation-free.

   Phase wall-clock times are recorded by [Budget.with_phase] into a
   mutex-guarded table here (deciders running under [Pool] may finish
   phases on the main domain while a worker polls a snapshot). *)

(* --- engine counters --- *)

let nodes = Atomic.make 0
let antichain_hits = Atomic.make 0
let evictions = Atomic.make 0
let arena_hw_words = Atomic.make 0
let steals = Atomic.make 0
let parks = Atomic.make 0
let shard_contention = Atomic.make 0

let incr_nodes () = Atomic.incr nodes
let incr_antichain_hits () = Atomic.incr antichain_hits
let incr_evictions () = Atomic.incr evictions
let incr_steals () = Atomic.incr steals
let incr_parks () = Atomic.incr parks
let incr_shard_contention () = Atomic.incr shard_contention

let note_arena_words w =
  let rec go () =
    let cur = Atomic.get arena_hw_words in
    if w > cur && not (Atomic.compare_and_set arena_hw_words cur w) then go ()
  in
  go ()

(* --- worker-domain GC aggregation --- *)

(* [Gc.quick_stat] reads domain-local accumulators, so a snapshot taken
   on the calling domain misses every word a pool worker allocated. The
   pool therefore samples each worker's quick_stat around its share of a
   job and folds the deltas in here; [snapshot] adds the fold to the
   caller's own quick_stat, so --stats tables and the allocation bars
   cover all domains, and diffs stay monotonic. *)

let dom_mutex = Mutex.create ()
let dom_minor = ref 0.
let dom_promoted = ref 0.
let dom_major = ref 0.
let dom_minor_cols = ref 0
let dom_major_cols = ref 0

let note_domain_gc ~before ~after =
  Mutex.lock dom_mutex;
  dom_minor := !dom_minor +. (after.Gc.minor_words -. before.Gc.minor_words);
  dom_promoted :=
    !dom_promoted +. (after.Gc.promoted_words -. before.Gc.promoted_words);
  dom_major := !dom_major +. (after.Gc.major_words -. before.Gc.major_words);
  dom_minor_cols :=
    !dom_minor_cols + (after.Gc.minor_collections - before.Gc.minor_collections);
  dom_major_cols :=
    !dom_major_cols + (after.Gc.major_collections - before.Gc.major_collections);
  Mutex.unlock dom_mutex

(* --- phase timers --- *)

let phase_mutex = Mutex.create ()
let phase_tbl : (string, float * int) Hashtbl.t = Hashtbl.create 16

let record_phase name dt =
  Mutex.lock phase_mutex;
  let t, n =
    match Hashtbl.find_opt phase_tbl name with
    | Some e -> e
    | None -> (0., 0)
  in
  Hashtbl.replace phase_tbl name (t +. dt, n + 1);
  Mutex.unlock phase_mutex

let phases () =
  Mutex.lock phase_mutex;
  let out =
    Hashtbl.fold (fun name (t, n) acc -> (name, t, n) :: acc) phase_tbl []
  in
  Mutex.unlock phase_mutex;
  (* most expensive first; name-tiebreak keeps the listing stable *)
  List.sort
    (fun (n1, t1, _) (n2, t2, _) ->
      match compare t2 t1 with 0 -> compare n1 n2 | c -> c)
    out

(* --- snapshots --- *)

type snapshot = {
  wall : float;
  nodes : int;
  antichain_hits : int;
  evictions : int;
  arena_high_water_words : int;
  steals : int;
  parks : int;
  shard_contention : int;
  sim_hits : int;
  sim_misses : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let snapshot () =
  let g = Gc.quick_stat () in
  let sim_hits, sim_misses, _ = Simcache.stats () in
  Mutex.lock dom_mutex;
  let dm = !dom_minor
  and dp = !dom_promoted
  and dj = !dom_major
  and dmc = !dom_minor_cols
  and djc = !dom_major_cols in
  Mutex.unlock dom_mutex;
  {
    wall = Unix.gettimeofday ();
    nodes = Atomic.get nodes;
    antichain_hits = Atomic.get antichain_hits;
    evictions = Atomic.get evictions;
    arena_high_water_words = Atomic.get arena_hw_words;
    steals = Atomic.get steals;
    parks = Atomic.get parks;
    shard_contention = Atomic.get shard_contention;
    sim_hits;
    sim_misses;
    minor_words = g.Gc.minor_words +. dm;
    promoted_words = g.Gc.promoted_words +. dp;
    major_words = g.Gc.major_words +. dj;
    minor_collections = g.Gc.minor_collections + dmc;
    major_collections = g.Gc.major_collections + djc;
  }

(* Counters are monotonic, so a delta is just a fieldwise subtraction;
   the arena high-water is a peak, not a rate, and keeps [after]'s
   value. *)
let diff ~before ~after =
  {
    wall = after.wall -. before.wall;
    nodes = after.nodes - before.nodes;
    antichain_hits = after.antichain_hits - before.antichain_hits;
    evictions = after.evictions - before.evictions;
    arena_high_water_words = after.arena_high_water_words;
    steals = after.steals - before.steals;
    parks = after.parks - before.parks;
    shard_contention = after.shard_contention - before.shard_contention;
    sim_hits = after.sim_hits - before.sim_hits;
    sim_misses = after.sim_misses - before.sim_misses;
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
  }

let minor_words_per_node s =
  if s.nodes = 0 then 0. else s.minor_words /. float_of_int s.nodes

(* --- reporting --- *)

let pp_human ppf s =
  let line fmt = Format.fprintf ppf fmt in
  line "@[<v>";
  line "engine statistics@,";
  line "  wall time            %10.3f s@," s.wall;
  line "  nodes explored       %10d@," s.nodes;
  line "  antichain hits       %10d@," s.antichain_hits;
  line "  antichain evictions  %10d@," s.evictions;
  line "  arena high water     %10d words@," s.arena_high_water_words;
  line "  steals / parks       %10d / %d@," s.steals s.parks;
  line "  shard contention     %10d@," s.shard_contention;
  line "  simcache hits/misses %10d / %d@," s.sim_hits s.sim_misses;
  line "  minor words          %14.0f  (%.2f / node)@," s.minor_words
    (minor_words_per_node s);
  line "  promoted words       %14.0f@," s.promoted_words;
  line "  major words          %14.0f@," s.major_words;
  line "  collections          %10d minor, %d major@," s.minor_collections
    s.major_collections;
  (match phases () with
  | [] -> ()
  | ps ->
      line "  phases:@,";
      List.iter
        (fun (name, t, n) -> line "    %-24s %8.3f s  x%d@," name t n)
        ps);
  line "@]"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(extra = []) s =
  let b = Buffer.create 512 in
  let field k v = Buffer.add_string b (Printf.sprintf "\"%s\":%s," k v) in
  Buffer.add_string b "{\"rlcheck_stats\":1,";
  List.iter
    (fun (k, v) -> field (json_escape k) v)
    extra;
  field "wall_s" (Printf.sprintf "%.6f" s.wall);
  field "nodes" (string_of_int s.nodes);
  field "antichain_hits" (string_of_int s.antichain_hits);
  field "evictions" (string_of_int s.evictions);
  field "arena_high_water_words" (string_of_int s.arena_high_water_words);
  field "steals" (string_of_int s.steals);
  field "parks" (string_of_int s.parks);
  field "shard_contention" (string_of_int s.shard_contention);
  field "sim_hits" (string_of_int s.sim_hits);
  field "sim_misses" (string_of_int s.sim_misses);
  field "minor_words" (Printf.sprintf "%.0f" s.minor_words);
  field "minor_words_per_node" (Printf.sprintf "%.4f" (minor_words_per_node s));
  field "promoted_words" (Printf.sprintf "%.0f" s.promoted_words);
  field "major_words" (Printf.sprintf "%.0f" s.major_words);
  field "minor_collections" (string_of_int s.minor_collections);
  field "major_collections" (string_of_int s.major_collections);
  let ps = phases () in
  Buffer.add_string b "\"phases\":{";
  List.iteri
    (fun i (name, t, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{\"wall_s\":%.6f,\"count\":%d}"
           (json_escape name) t n))
    ps;
  Buffer.add_string b "}}";
  Buffer.contents b

(* --- GC tuning --- *)

(* Defaults measured with [bench/campaign.ml] on the antichain families:
   a 4M-word (32 MB) minor heap keeps frontier scratch out of the major
   heap between level boundaries, and space_overhead 200 halves major
   slice work on the long-lived CSR/arena arrays for a few percent of
   extra residency. [RLCHECK_GC=off] opts out; explicit
   [minor=<words>,space_overhead=<percent>] overrides field-wise. *)

let default_minor_words = 4_194_304
let default_space_overhead = 200

let gc_tune () =
  match Sys.getenv_opt "RLCHECK_GC" with
  | Some "off" -> ()
  | spec ->
      let minor = ref default_minor_words
      and space = ref default_space_overhead in
      (match spec with
      | None | Some "" -> ()
      | Some s ->
          List.iter
            (fun kv ->
              match String.index_opt kv '=' with
              | None -> ()
              | Some i ->
                  let k = String.sub kv 0 i
                  and v =
                    String.sub kv (i + 1) (String.length kv - i - 1)
                  in
                  (match (k, int_of_string_opt v) with
                  | "minor", Some n when n > 0 -> minor := n
                  | "space_overhead", Some n when n > 0 -> space := n
                  | _ -> ()))
            (String.split_on_char ',' s));
      let g = Gc.get () in
      Gc.set { g with minor_heap_size = !minor; space_overhead = !space }
