(** Fingerprint-keyed memo table for simulation preorders.

    Stores one computed preorder per structural fingerprint of an
    automaton. The payload is representation-neutral — one
    {!Rl_prelude.Bitset.t} row per state, [rows.(q)] holding the states
    related to [q] — so the kernel stays below the automata libraries;
    fingerprinting and the translation to concrete automata live in
    [Rl_automata.Preorder].

    The table is global and mutex-guarded (deciders running under [Pool]
    may race on lookups), and it is {e bounded}: entries beyond the
    capacity — default 512, overridable with the [RLCHECK_SIMCACHE_CAP]
    environment variable or {!set_capacity} ([<= 0] = unbounded) — are
    evicted least-recently-used, so a long-running daemon fed a hostile
    stream of distinct models pays recomputation, never unbounded
    memory. Entries are immutable after insertion: treat returned rows
    as read-only. *)

type key = string
(** A structural fingerprint, e.g. [Digest.string] of a canonical
    serialization. Keys must determine the automaton structure up to the
    relation being cached (include a tag for the relation's direction). *)

type entry = Rl_prelude.Bitset.t array

(** [find_or_compute key compute] returns the cached entry for [key], or
    runs [compute] (outside the table lock), stores and returns its
    result. [compute] must be deterministic for the key. *)
val find_or_compute : key -> (unit -> entry) -> entry

(** [with_observer f body] runs [body] with [f] installed as a key
    observer: [f key] fires (under the table mutex — [f] must not call
    back into this module) for every key {!find_or_compute} touches,
    hit or miss, on any thread, until [body] returns. The service's
    incremental re-check records a decide's keys this way so an edit to
    the model can {!remove} exactly the entries it fingerprinted.
    Concurrent decides over-record each other's keys; since keys are
    content-addressed, the resulting early eviction of a live entry
    only ever costs a recomputation. Nests freely. *)
val with_observer : (key -> unit) -> (unit -> 'a) -> 'a

(** [remove key] drops the entry for [key] if present. The service's
    incremental re-check calls this for the fingerprints of a model
    version a client has edited away: those keys can never be hit again
    (keys are content-addressed), so evicting them eagerly frees
    capacity instead of waiting for LRU pressure. Safe concurrently with
    {!find_or_compute}: rows already handed out stay valid (entries are
    immutable), and a racing lookup just recomputes. *)
val remove : key -> unit

(** [invalidated ()] — entries dropped by {!remove} since the last
    {!clear} (distinct from LRU {!evictions}). *)
val invalidated : unit -> int

(** [stats ()] is [(hits, misses, entries)] since the last {!clear}. *)
val stats : unit -> int * int * int

(** [evictions ()] — entries dropped by the LRU bound since the last
    {!clear}. *)
val evictions : unit -> int

(** The current capacity in entries ([<= 0] = unbounded). *)
val capacity : unit -> int

(** [set_capacity n] rebounds the table immediately, evicting down to
    [n] if needed. *)
val set_capacity : int -> unit

(** [clear ()] empties the table and resets the counters. *)
val clear : unit -> unit
