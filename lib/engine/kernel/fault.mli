(** Deterministic fault injection for the checking engine.

    The robustness layer ({!Pool} worker restarts, the service
    supervisor's deadlines, the bounded caches) exists to survive partial
    failure — but partial failure is rare in tests unless it is
    manufactured. This module names the failure modes the engine claims to
    survive and lets a chaos harness fire them on demand, {e
    deterministically}: a fixed seed and per-point rate reproduce the
    exact same fault schedule on every run, so CI can assert that the
    daemon stays up and verdicts match the fault-free run.

    {2 Injection points}

    - {!Pool_domain_death} — a pool worker domain dies at the moment it
      picks up a parallel region's job (probed in [Pool.worker_loop]).
      Exercises the death-safe barrier, slot repair and {!Pool.heal}.
    - {!Budget_contention} — a budget publish spins briefly before its
      CAS, widening the race window between domains racing to exhaust the
      same budget (probed in [Budget.flush]/[Budget.charge]).
    - {!Cache_miss_storm} — a {!Simcache} lookup pretends the entry is
      absent and recomputes, simulating an evicted / cold cache under a
      hostile workload (probed in [Simcache.find_or_compute]).
    - {!Malformed_input} — the service request layer corrupts the model
      source just before parsing, simulating a client that sends garbage
      mid-stream (probed in [Rl_service.Request]).
    - {!Deadline_expiry} — the service supervisor treats the request's
      deadline as already expired, exercising the watchdog reply path
      (probed in [Rl_service.Supervisor]).

    {2 Arming}

    Faults are disarmed by default and cost one mutable-bool read on the
    probe fast path. They arm either from the [RLCHECK_FAULT] environment
    variable — a comma-separated list like
    ["seed=42,pool_domain_death=0.2,cache_miss_storm=1.0"], each point
    given its firing probability in [0,1] — or programmatically with
    {!configure} (used by the chaos test suites). The schedule is a pure
    function of the seed and the per-point probe count; probes on
    different points draw from independent split streams, so adding a
    probe site for one point does not shift another's schedule. *)

type point =
  | Pool_domain_death
  | Budget_contention
  | Cache_miss_storm
  | Malformed_input
  | Deadline_expiry

(** Raised by {!fire} when the point's schedule says the fault happens
    now. Probe sites translate it into the real failure they simulate
    (e.g. the pool treats it as the death of the probing domain). *)
exception Injected of point

val all : point list

(** The wire/env name of a point, e.g. ["pool_domain_death"]. *)
val name : point -> string

val of_name : string -> point option

(** [armed ()] — some fault schedule is active. Probe sites check this
    first; when it is [false] (the default) a probe is a single read. *)
val armed : unit -> bool

(** [configure ?seed rates] arms the given points, each with a firing
    probability in [[0,1]]; points not listed never fire. [seed]
    (default [0]) fixes the schedule. Replaces any previous
    configuration and zeroes the counters. *)
val configure : ?seed:int -> (point * float) list -> unit

(** [configure_from_env ()] arms from [RLCHECK_FAULT] if set (see the
    module preamble for the syntax); does nothing when unset. Malformed
    specifications raise [Invalid_argument] — a chaos run with a typo
    must fail loudly, not silently run fault-free. *)
val configure_from_env : unit -> unit

(** [reset ()] disarms everything and zeroes the counters. *)
val reset : unit -> unit

(** [should_fire p] advances [p]'s schedule by one probe and reports
    whether the fault fires now. Deterministic per configuration; safe to
    call from any domain. Always [false] when disarmed. *)
val should_fire : point -> bool

(** [fire p] is [should_fire p] turned into control flow:
    @raise Injected when the schedule fires. *)
val fire : point -> unit

(** [fired p] — how many times [p] has fired since configuration. *)
val fired : point -> int

(** [probes p] — how many times [p] has been probed since configuration. *)
val probes : point -> int
