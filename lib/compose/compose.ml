open Rl_sigma
open Rl_automata
open Rl_hom

let check_ts n =
  if Nfa.has_eps n then invalid_arg "Compose: ε-moves not allowed";
  if not (Nfa.all_states_final n) then
    invalid_arg "Compose: operands must be transition systems (all states final)"

let union_alphabet a b =
  let aa = Nfa.alphabet a and ab = Nfa.alphabet b in
  (* membership via a hash set of [a]'s intern ids: integer keys, no
     string hashing (the old name-keyed set was itself a fix for a
     quadratic List.mem scan on wide action alphabets) *)
  let seen = Hashtbl.create (Alphabet.size aa) in
  List.iter
    (fun s -> Hashtbl.replace seen (Alphabet.intern_id aa s) ())
    (Alphabet.symbols aa);
  Alphabet.make
    (Alphabet.names aa
    @ List.filter_map
        (fun s ->
          if Hashtbl.mem seen (Alphabet.intern_id ab s) then None
          else Some (Alphabet.name ab s))
        (Alphabet.symbols ab))

(* Per-letter moves of the product: (pairs of successor chooser).
   [moves_a] / [moves_b] give the component moves for a union-alphabet
   symbol, or None when the component does not know the action (it then
   stays put). The translation is a dense intern-id remap built once per
   operand — the per-(pair, symbol) hot loops of the product BFS no
   longer hash a name per step. *)
let component_view n union_alpha =
  let remap = Alphabet.remap ~src:union_alpha ~dst:(Nfa.alphabet n) in
  fun sym ->
    let s = remap.(sym) in
    if s < 0 then None else Some s

(* Quotient the operands by mutual simulation before exploring the
   product: the language of a CSP-style synchronized product depends only
   on the component languages, and [Preorder.reduce] preserves both the
   language and the all-states-final (transition-system) shape, so the
   composition's behaviors are unchanged while the pair space shrinks
   multiplicatively. *)
let reduce_operand reduce n = if reduce then Preorder.reduce n else n

let parallel ?(reduce = true) a b =
  check_ts a;
  check_ts b;
  let a = reduce_operand reduce a and b = reduce_operand reduce b in
  let alpha = union_alphabet a b in
  let k = Alphabet.size alpha in
  let view_a = component_view a alpha and view_b = component_view b alpha in
  let table = Hashtbl.create 64 in
  let rev = ref [] in
  let count = ref 0 in
  let intern pair =
    match Hashtbl.find_opt table pair with
    | Some id -> (id, false)
    | None ->
        let id = !count in
        incr count;
        Hashtbl.add table pair id;
        rev := pair :: !rev;
        (id, true)
  in
  let queue = Queue.create () in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let pair = (p, q) in
          let _, fresh = intern pair in
          if fresh then Queue.add pair queue)
        (Nfa.initial b))
    (Nfa.initial a);
  let edges = ref [] in
  while not (Queue.is_empty queue) do
    let ((p, q) as pair) = Queue.pop queue in
    let src = Hashtbl.find table pair in
    for sym = 0 to k - 1 do
      let succs =
        match (view_a sym, view_b sym) with
        | Some sa, Some sb ->
            (* shared action: synchronize *)
            List.concat_map
              (fun p' -> List.map (fun q' -> (p', q')) (Nfa.successors b q sb))
              (Nfa.successors a p sa)
        | Some sa, None ->
            List.map (fun p' -> (p', q)) (Nfa.successors a p sa)
        | None, Some sb ->
            List.map (fun q' -> (p, q')) (Nfa.successors b q sb)
        | None, None -> []
      in
      List.iter
        (fun pair' ->
          let dst, fresh = intern pair' in
          if fresh then Queue.add pair' queue;
          edges := (src, sym, dst) :: !edges)
        succs
    done
  done;
  Nfa.trim
    (Nfa.create ~alphabet:alpha ~states:!count
       ~initial:
         (List.concat_map
            (fun p -> List.filter_map (fun q -> Hashtbl.find_opt table (p, q)) (Nfa.initial b))
            (Nfa.initial a))
       ~finals:(List.init !count Fun.id)
       ~transitions:!edges ())

let parallel_many ?reduce = function
  | [] -> invalid_arg "Compose.parallel_many: empty list"
  | first :: rest -> List.fold_left (parallel ?reduce) first rest

type stats = {
  abstract_states : int;
  product_pairs_touched : int;
  product_pairs_total : int;
}

let abstracted_parallel ?(reduce = true) hom a b =
  check_ts a;
  check_ts b;
  let a = reduce_operand reduce a and b = reduce_operand reduce b in
  let alpha = union_alphabet a b in
  if not (Alphabet.equal alpha (Hom.concrete hom)) then
    invalid_arg
      "Compose.abstracted_parallel: homomorphism alphabet must be the union \
       alphabet";
  let k = Alphabet.size alpha in
  let abstract = Hom.abstract hom in
  let ka = Alphabet.size abstract in
  let view_a = component_view a alpha and view_b = component_view b alpha in
  let nb = Nfa.states b in
  let encode p q = (p * nb) + q in
  let touched = Hashtbl.create 64 in
  let touch pair = if not (Hashtbl.mem touched pair) then Hashtbl.add touched pair () in
  (* one concrete product step from pair (p,q) on union symbol sym *)
  let step (p, q) sym =
    match (view_a sym, view_b sym) with
    | Some sa, Some sb ->
        List.concat_map
          (fun p' -> List.map (fun q' -> (p', q')) (Nfa.successors b q sb))
          (Nfa.successors a p sa)
    | Some sa, None -> List.map (fun p' -> (p', q)) (Nfa.successors a p sa)
    | None, Some sb -> List.map (fun q' -> (p, q')) (Nfa.successors b q sb)
    | None, None -> []
  in
  (* ε-closure: saturate a set of pairs under hidden actions *)
  let closure pairs =
    let seen = Hashtbl.create 16 in
    let stack = ref pairs in
    let add pair =
      if not (Hashtbl.mem seen pair) then begin
        Hashtbl.add seen pair ();
        touch pair;
        stack := pair :: !stack
      end
    in
    List.iter add pairs;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | pair :: rest ->
          stack := rest;
          for sym = 0 to k - 1 do
            if Hom.apply_symbol hom sym = None then List.iter add (step pair sym)
          done
    done;
    Hashtbl.fold (fun pair () acc -> pair :: acc) seen []
    |> List.sort_uniq compare
  in
  let key pairs = List.map (fun (p, q) -> encode p q) pairs in
  let table = Hashtbl.create 64 in
  let count = ref 0 in
  let intern pairs =
    let kk = key pairs in
    match Hashtbl.find_opt table kk with
    | Some id -> (id, false)
    | None ->
        let id = !count in
        incr count;
        Hashtbl.add table kk id;
        (id, true)
  in
  let inits =
    List.concat_map (fun p -> List.map (fun q -> (p, q)) (Nfa.initial b)) (Nfa.initial a)
  in
  let init_set = closure inits in
  let init_id, _ = intern init_set in
  let queue = Queue.create () in
  Queue.add init_set queue;
  let edges = ref [] in
  while not (Queue.is_empty queue) do
    let set = Queue.pop queue in
    let src = Hashtbl.find table (key set) in
    for bsym = 0 to ka - 1 do
      (* all concrete symbols abstracting to bsym *)
      let moved =
        List.concat_map
          (fun pair ->
            List.concat
              (List.init k (fun sym ->
                   if Hom.apply_symbol hom sym = Some bsym then step pair sym
                   else [])))
          set
      in
      if moved <> [] then begin
        let set' = closure (List.sort_uniq compare moved) in
        let dst, fresh = intern set' in
        if fresh then Queue.add set' queue;
        edges := (src, bsym, dst) :: !edges
      end
    done
  done;
  let ts =
    Nfa.trim
      (Nfa.create ~alphabet:abstract ~states:!count ~initial:[ init_id ]
         ~finals:(List.init !count Fun.id)
         ~transitions:!edges ())
  in
  ( ts,
    {
      abstract_states = Nfa.states ts;
      product_pairs_touched = Hashtbl.length touched;
      product_pairs_total = Nfa.states a * Nfa.states b;
    } )
