(** Parallel composition of transition systems, and on-the-fly abstraction.

    The paper's conclusion points to Ochsenschläger's compositional
    technique ([22]): to check relative liveness properties of a composed
    system, one wants the finite-state representation of its {e abstract}
    behavior without an exhaustive construction of the concrete state
    space. This module provides the two ingredients:

    - {!parallel}: CSP-style parallel composition — components synchronize
      on shared action names and interleave their private actions;
    - {!abstracted_parallel}: computes a transition system for
      [h(L(a ∥ b))] directly, interleaving the product construction with
      the ε-closure of hidden actions, so that only the product states
      reachable through {e observably distinct} histories are enumerated.

    All operands and results are transition systems: trim NFAs with every
    state final (prefix-closed languages). *)

open Rl_sigma
open Rl_automata

(** [parallel a b] is the parallel composition [a ∥ b] over the union of
    the two alphabets: actions named in both alphabets synchronize, others
    interleave. Only reachable product states are built. [reduce]
    (default [true]) quotients both operands by mutual simulation first
    — language-preserving and shape-preserving, so the composition's
    behaviors are unchanged while the explored pair space shrinks.
    @raise Invalid_argument if an operand is not a transition system. *)
val parallel : ?reduce:bool -> Nfa.t -> Nfa.t -> Nfa.t

(** [parallel_many systems] folds {!parallel} over a non-empty list. *)
val parallel_many : ?reduce:bool -> Nfa.t list -> Nfa.t

(** Exploration statistics of {!abstracted_parallel}: how much of the
    concrete product was avoided. *)
type stats = {
  abstract_states : int;  (** states of the returned abstract system *)
  product_pairs_touched : int;
      (** concrete product states entered by any ε-closure *)
  product_pairs_total : int;  (** size of the full concrete product *)
}

(** [abstracted_parallel hom a b] is a deterministic transition system for
    [h(L(a ∥ b))], built without materializing [a ∥ b] first: abstract
    states are ε-closed sets of product states, explored on the fly.
    [hom]'s concrete alphabet must equal the union alphabet of
    [parallel a b] (same names, same order).
    Equivalent to [Hom.image_ts hom (parallel a b)] up to language
    equality. *)
val abstracted_parallel :
  ?reduce:bool -> Rl_hom.Hom.t -> Nfa.t -> Nfa.t -> Nfa.t * stats

(** [union_alphabet a b] is the alphabet [parallel a b] is built over:
    the names of [a] followed by the names of [b] not already present. *)
val union_alphabet : Nfa.t -> Nfa.t -> Alphabet.t
