(* rlcheckd — the checking service and its client.

   Subcommands:
     serve     run the daemon on a Unix socket (foreground)
     check     submit one job to a running daemon; prints and exits
               exactly like the corresponding `rlcheck` invocation
     ping      liveness probe (optionally waiting for the daemon to
               come up — the test suites' startup barrier)
     stats     dump the daemon's JSON health report
     shutdown  ask the daemon to exit

   The wire protocol is documented in lib/service/daemon.mli. The
   client side here is deliberately thin: one JSON line out, one line
   back, no retries beyond `ping --wait`. *)

open Cmdliner
module J = Rl_service.Jsonx
module Daemon = Rl_service.Daemon

let fail fmt = Format.kasprintf (fun m -> Format.eprintf "rlcheckd: %s@." m; exit 2) fmt

(* --- the one-line client --- *)

let roundtrip socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc line;
      output_char oc '\n';
      flush oc;
      input_line ic)

let roundtrip_or_die socket_path line =
  match roundtrip socket_path line with
  | reply -> reply
  | exception Unix.Unix_error (e, _, _) ->
      fail "cannot reach %s: %s" socket_path (Unix.error_message e)
  | exception End_of_file ->
      fail "daemon at %s closed the connection without replying" socket_path

let parse_reply line =
  match J.parse line with
  | Ok doc -> doc
  | Error msg -> fail "malformed reply %S: %s" line msg

(* --- common arguments --- *)

let socket_arg =
  let doc = "Path of the daemon's Unix socket." in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

(* --- serve --- *)

let jobs_arg =
  let doc =
    "Worker domains for the shared checking pool: 1 (default) runs \
     serially, 0 means one domain per core."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Default wall-clock deadline per check batch, in seconds; a request's \
     own deadline_s overrides it. Jobs past the deadline report status \
     'deadline'/'skipped' with exit code 4."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let cache_cap_arg =
  let doc = "Capacity of the parsed-model LRU cache (0 = unbounded)." in
  Arg.(value & opt int 256 & info [ "model-cache" ] ~docv:"N" ~doc)

let max_batch_arg =
  let doc = "Refuse check batches with more than $(docv) jobs." in
  Arg.(value & opt int 256 & info [ "max-batch" ] ~docv:"N" ~doc)

let max_connections_arg =
  let doc =
    "Serve at most $(docv) concurrent connections; one over the limit is \
     answered with a 'server busy' error line and closed."
  in
  Arg.(value & opt int 32 & info [ "max-connections" ] ~docv:"N" ~doc)

let quiet_arg =
  let doc = "Suppress the stderr log lines." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let run_serve socket jobs deadline_s model_cache_capacity max_batch
    max_connections quiet =
  match
    Daemon.serve
      { Daemon.socket_path = socket; jobs; deadline_s; model_cache_capacity;
        max_batch; max_connections; quiet }
  with
  | () -> exit 0
  | exception Invalid_argument m -> fail "%s" m
  | exception Unix.Unix_error (e, op, _) ->
      fail "%s: %s" op (Unix.error_message e)

let serve_cmd =
  let doc = "run the checking daemon on a Unix socket (foreground)" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ socket_arg $ jobs_arg $ deadline_arg $ cache_cap_arg
      $ max_batch_arg $ max_connections_arg $ quiet_arg)

(* --- ping --- *)

let wait_arg =
  let doc =
    "Keep retrying for up to $(docv) seconds while the daemon comes up \
     (0 = one attempt). The test suites' startup barrier."
  in
  Arg.(value & opt float 0. & info [ "wait" ] ~docv:"SECONDS" ~doc)

let run_ping socket wait =
  let deadline = Unix.gettimeofday () +. wait in
  let rec go () =
    match roundtrip socket {|{"op":"ping"}|} with
    | line ->
        let doc = parse_reply line in
        if J.bool_member "ok" doc = Some true then begin
          print_endline "pong";
          exit 0
        end
        else fail "unexpected reply: %s" line
    | exception
        ( Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        | End_of_file )
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        go ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "cannot reach %s: %s" socket (Unix.error_message e)
    | exception End_of_file ->
        fail "daemon at %s closed the connection without replying" socket
  in
  go ()

let ping_cmd =
  let doc = "check that the daemon is alive" in
  Cmd.v (Cmd.info "ping" ~doc) Term.(const run_ping $ socket_arg $ wait_arg)

(* --- stats / shutdown --- *)

let run_stats socket =
  let doc = parse_reply (roundtrip_or_die socket {|{"op":"stats"}|}) in
  match J.member "stats" doc with
  | Some stats -> print_endline (J.to_string stats); exit 0
  | None -> fail "unexpected reply: missing \"stats\""

let stats_cmd =
  let doc = "print the daemon's JSON health report" in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run_stats $ socket_arg)

let run_shutdown socket =
  let doc = parse_reply (roundtrip_or_die socket {|{"op":"shutdown"}|}) in
  if J.bool_member "ok" doc = Some true then begin
    print_endline "shutdown requested";
    exit 0
  end
  else fail "daemon refused to shut down"

let shutdown_cmd =
  let doc = "ask the daemon to exit (it removes its socket file)" in
  Cmd.v (Cmd.info "shutdown" ~doc) Term.(const run_shutdown $ socket_arg)

(* --- check: the client-side mirror of `rlcheck sat/rl/rs` --- *)

let kind_arg =
  let doc = "Check kind: $(docv) is one of 'sat', 'rl', 'rs'." in
  Arg.(
    value
    & opt (Arg.enum [ ("sat", "sat"); ("rl", "rl"); ("rs", "rs") ]) "sat"
    & info [ "k"; "kind" ] ~docv:"KIND" ~doc)

let system_arg =
  let doc = "System file (resolved by the daemon, relative to its cwd)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc)

let formula_arg =
  let doc = "PLTL formula, e.g. '[]<> result'." in
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "formula" ] ~docv:"FORMULA" ~doc)

let max_states_arg =
  let doc = "Per-job state budget (exit 4 on exhaustion)." in
  Arg.(value & opt (some int) None & info [ "max-states" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc = "Per-job cooperative time budget, in seconds." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let bound_arg =
  let doc = "Token bound per place for Petri-net reachability." in
  Arg.(value & opt (some int) None & info [ "bound" ] ~docv:"K" ~doc)

let no_lint_arg =
  let doc = "Skip the pre-flight lint phase." in
  Arg.(value & flag & info [ "no-lint" ] ~doc)

let job_deadline_arg =
  let doc =
    "Wall-clock deadline for this request, in seconds (overrides the \
     daemon's default)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let num n = J.Num (float_of_int n)

let run_client_check socket kind path formula max_states timeout bound no_lint
    deadline =
  let opt name f v = match v with Some v -> [ (name, f v) ] | None -> [] in
  let job =
    J.Obj
      ([ ("kind", J.Str kind); ("path", J.Str path); ("formula", J.Str formula) ]
      @ opt "max_states" num max_states
      @ opt "timeout_s" (fun t -> J.Num t) timeout
      @ opt "bound" num bound
      @ if no_lint then [ ("no_lint", J.Bool true) ] else [])
  in
  let request =
    J.Obj
      ([ ("op", J.Str "check") ]
      @ opt "deadline_s" (fun d -> J.Num d) deadline
      @ [ ("jobs", J.Arr [ job ]) ])
  in
  let doc = parse_reply (roundtrip_or_die socket (J.to_string request)) in
  if J.bool_member "ok" doc <> Some true then
    fail "%s"
      (Option.value ~default:"request failed" (J.str_member "error" doc));
  match J.arr_member "results" doc with
  | Some [ r ] ->
      List.iter
        (fun d ->
          match J.str_member "rendered" d with
          | Some s -> Format.eprintf "rlcheckd: %s@." s
          | None -> ())
        (Option.value ~default:[] (J.arr_member "diagnostics" r));
      (match J.str_member "status" r with
      | Some ("holds" | "fails") -> (
          match J.str_member "message" r with
          | Some m when m <> "" -> print_endline m
          | _ -> ())
      | _ -> (
          match J.str_member "error" r with
          | Some e -> Format.eprintf "rlcheckd: %s@." e
          | None -> ()));
      exit (Option.value ~default:2 (J.int_member "exit_code" r))
  | _ -> fail "unexpected reply: expected exactly one result"

let check_cmd =
  let doc =
    "submit one (system, formula, kind) job to a running daemon; output and \
     exit code mirror the corresponding $(b,rlcheck) invocation"
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run_client_check $ socket_arg $ kind_arg $ system_arg $ formula_arg
      $ max_states_arg $ timeout_arg $ bound_arg $ no_lint_arg
      $ job_deadline_arg)

(* --- entry --- *)

let exits =
  [
    Cmd.Exit.info 0 ~doc:"success (for $(b,check): the property holds).";
    Cmd.Exit.info 1 ~doc:"$(b,check): the property fails; witness printed.";
    Cmd.Exit.info 2 ~doc:"usage, transport, input, or internal error.";
    Cmd.Exit.info 4
      ~doc:
        "$(b,check): a resource budget or the request deadline was \
         exhausted.";
  ]

let main =
  let doc = "relative liveness checking service (daemon and client)" in
  let info = Cmd.info "rlcheckd" ~version:"1.0.0" ~doc ~exits in
  Cmd.group info
    [ serve_cmd; check_cmd; ping_cmd; stats_cmd; shutdown_cmd ]

let () =
  match Cmd.eval ~catch:false main with
  | 124 -> exit 2
  | code -> exit code
  | exception e ->
      Format.eprintf "rlcheckd: internal error: %s@." (Printexc.to_string e);
      exit 2
