(* rlcheck — relative liveness checking from the command line.

   Subcommands:
     sat       classical satisfaction  Lω ⊆ P
     rl        relative liveness (Definition 4.1 / Lemma 4.3)
     rs        relative safety (Definition 4.2 / Lemma 4.4)
     abstract  behavior-abstraction pipeline (Theorems 8.2/8.3)
     impl      Theorem 5.1 fair-implementation construction
     lint      static diagnostics (model / formula / abstraction lints)
     info      system statistics
     dot       GraphViz output

   Systems are transition-system files (see lib/core/ts_format.mli), or
   Petri nets when the file ends in .pn.

   Every decider runs the cheap lint passes as a pre-flight phase
   (--no-lint skips it): Error diagnostics abort with exit 2, Warnings go
   to stderr and the check proceeds, Hints are shown only by `rlcheck
   lint`.

   Exit codes (also in the manual page):
     0  the property holds
     1  the property fails; a certified witness was printed
     2  usage, input, or internal error
     3  the analysis completed but no conclusion transfers
     4  a resource budget (--max-states / --timeout) was exhausted

   Every witness is replayed through Rl_engine.Certify before it is
   printed; the tool never reports a verdict its own independent replay
   does not confirm. *)

open Cmdliner
open Rl_sigma
open Rl_automata
open Rl_buchi
open Rl_core
module Budget = Rl_engine.Budget
module Error = Rl_engine.Error
module Certify = Rl_engine.Certify
module Pool = Rl_engine.Pool
module Stats = Rl_engine.Stats
module Diagnostic = Rl_analysis.Diagnostic
module Lint = Rl_analysis.Lint
module Request = Rl_service.Request

let report_diag d = Format.eprintf "rlcheck: %a@." Diagnostic.pp d

let load_system ?budget ?bound path =
  Result.map Nfa.trim
    (Ts_format.load_result ~on_diagnostic:report_diag ?budget ?bound path)

(* Pre-flight for the deciders: parse (collecting the typed parse
   diagnostics), run the cheap lint passes on the untrimmed system, print
   everything but Hints to stderr, refuse Errors with exit 2 (unless
   --no-lint), and only then trim. Parse diagnostics print even under
   --no-lint: they were the tool's behavior before the lint phase
   existed. *)
let load_and_lint ?budget ?bound ?formula ?keep ~no_lint path =
  let parse_diags = ref [] in
  let collect d = parse_diags := d :: !parse_diags in
  Result.map
    (fun sys ->
      let parse = List.rev !parse_diags in
      let diags =
        if no_lint then parse
        else
          Lint.run ~deep:false
            {
              Lint.empty with
              file = Some path;
              parse;
              system = Some sys;
              formula;
              keep;
            }
      in
      let visible =
        List.filter (fun d -> d.Diagnostic.severity <> Diagnostic.Hint) diags
      in
      List.iter report_diag visible;
      if (not no_lint) && List.exists Diagnostic.is_error visible then begin
        Format.eprintf
          "rlcheck: pre-flight lint failed (%s); rerun with --no-lint to \
           proceed anyway@."
          (Diagnostic.summary visible);
        exit 2
      end;
      Nfa.trim sys)
    (Ts_format.load_result ~on_diagnostic:collect ?budget ?bound path)

let parse_formula s =
  try Ok (Rl_ltl.Parser.parse s)
  with Rl_ltl.Parser.Parse_error msg ->
    Error
      (Error.Parse_error
         { file = None; line = 0; msg = Printf.sprintf "formula %S: %s" s msg })

(* --- common arguments --- *)

let system_arg =
  let doc = "System file: a transition system, or a Petri net if it ends in .pn." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SYSTEM" ~doc)

let formula_arg =
  let doc = "PLTL formula, e.g. '[]<> result'." in
  Arg.(required & opt (some string) None & info [ "f"; "formula" ] ~docv:"FORMULA" ~doc)

let max_states_arg =
  let doc =
    "Give up with exit code 4 after exploring $(docv) states across all \
     phases of the check."
  in
  Arg.(value & opt (some int) None & info [ "max-states" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc = "Give up with exit code 4 after $(docv) seconds of wall clock." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel checking engine. The default 1 runs \
     serially; $(docv) > 1 fans the antichain frontiers, complementation \
     levels and independent sub-checks out across $(docv) domains; 0 means \
     one domain per available core. Verdicts, witnesses and exit codes are \
     identical for every value (phases that are inherently serial simply \
     ignore the pool). Frontiers whose projected work is below the adaptive \
     cutoff (env RLCHECK_PAR_CUTOFF, microseconds; 0 forces fan-out) run \
     serially to avoid paying the fan-out overhead on trivial regions."
  in
  let env = Cmd.Env.info "RLCHECK_JOBS" ~doc:"Default value for $(b,--jobs)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc ~env)

(* A serial run gets no pool at all — [?pool:None] everywhere — so --jobs 1
   takes literally the code path of the pre-parallel engine. Exits inside
   the body bypass the shutdown; process termination reaps the domains. *)
let with_jobs jobs f =
  if jobs = 1 then f None else Pool.with_pool ~jobs (fun p -> f (Some p))

let bound_arg =
  let doc =
    "Token bound per place when exploring a Petri net's reachability graph \
     (default 64); a place exceeding it makes the net unbounded."
  in
  Arg.(value & opt (some int) None & info [ "bound" ] ~docv:"K" ~doc)

let no_lint_arg =
  let doc =
    "Skip the pre-flight lint phase. Parse diagnostics still print; lint \
     $(b,Error)s no longer abort the run — beware that the verdict may \
     then be vacuous (e.g. on a system with no infinite behavior)."
  in
  Arg.(value & flag & info [ "no-lint" ] ~doc)

let stats_arg =
  let doc =
    "After the verdict, report the engine's hot-path profile for this \
     run: a human-readable table on stderr, and one machine-parsable \
     JSON line (an object tagged $(b,\"rlcheck_stats\":1)) on stdout. \
     The counters are on unconditionally — this flag only prints them."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* The --stats epilogue. Counters are process-monotonic, so the run's
   figure is the delta between a snapshot taken before the check and one
   taken here; the table goes to stderr so stdout gains exactly one
   extra line, the JSON one, for scripts to grep out. *)
let emit_stats = function
  | None -> ()
  | Some before ->
      let d = Stats.diff ~before ~after:(Stats.snapshot ()) in
      Format.eprintf "%a@." Stats.pp_human d;
      print_endline (Stats.to_json d)

let handle = function
  | Ok () -> exit 0
  | Error err ->
      Format.eprintf "rlcheck: %a@." Error.pp err;
      exit (Error.exit_code err)

(* Run the body under the typed-error net: domain exceptions and budget
   exhaustion come back as Error.t and exit through [handle] with the
   documented code (4 for exhaustion, 2 otherwise). *)
let guarded body = handle (Result.join (Error.protect body))

let ( let* ) r f = Result.bind r f

(* --- sat / rl / rs --- *)

(* The three deciding subcommands run through the service's request
   layer (lib/service/request.ml) — the same pipeline the daemon
   executes, so the CLI and rlcheckd cannot drift. The reply carries
   what used to be printed inline: diagnostics and the lint-refusal
   line go to stderr first (exactly the order the streaming code
   produced), the verdict line to stdout, and the status maps onto the
   documented exit codes. *)

let print_reply ?stats_before (reply : Request.reply) =
  List.iter report_diag reply.Request.diagnostics;
  (match reply.Request.blocked_summary with
  | Some summary -> Format.eprintf "rlcheck: %s@." summary
  | None -> ());
  (match reply.Request.status with
  | Request.Holds | Request.Fails -> Format.printf "%s@." reply.Request.message
  | Request.Blocked -> ()
  | Request.Failed err -> Format.eprintf "rlcheck: %a@." Error.pp err);
  emit_stats stats_before;
  exit (Request.exit_code reply)

let run_check mode path formula_src max_states timeout bound jobs no_lint
    stats =
  let kind =
    match mode with `Sat -> Request.Sat | `Rl -> Request.Rl | `Rs -> Request.Rs
  in
  let job =
    Request.job ?max_states ?timeout ?bound ~no_lint kind (Request.File path)
      formula_src
  in
  let stats_before = if stats then Some (Stats.snapshot ()) else None in
  with_jobs jobs @@ fun pool ->
  print_reply ?stats_before (Request.run ?pool job)

let check_cmd name mode doc =
  let term =
    Term.(
      const (run_check mode) $ system_arg $ formula_arg $ max_states_arg
      $ timeout_arg $ bound_arg $ jobs_arg $ no_lint_arg $ stats_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

(* --- abstract --- *)

let keep_arg =
  let doc = "Comma-separated observable actions; all others are hidden." in
  Arg.(required & opt (some (list string)) None & info [ "keep" ] ~docv:"ACTIONS" ~doc)

let eps_check =
  let doc = "Also run the direct concrete check of R̄(η) and compare." in
  Arg.(value & flag & info [ "check-concrete" ] ~doc)

let run_abstract path formula_src keep check_concrete max_states timeout bound
    jobs no_lint stats =
  let budget = Budget.create ?max_states ?timeout () in
  let stats_before = if stats then Some (Stats.snapshot ()) else None in
  guarded @@ fun () ->
  with_jobs jobs @@ fun pool ->
  let* f = parse_formula formula_src in
  let* ts = load_and_lint ~budget ?bound ~formula:f ~keep ~no_lint path in
  let* hom =
    try Ok (Rl_hom.Hom.hiding ~concrete:(Nfa.alphabet ts) ~keep)
    with Invalid_argument m -> Error (Error.Internal m)
  in
  let* report =
    try Ok (Abstraction.verify ~budget ?pool ~ts ~hom ~formula:f ())
    with Invalid_argument m -> Error (Error.Internal m)
  in
  Format.printf "%a@." Abstraction.pp_report report;
  (* the hypotheses this very run found violated, as lint diagnostics
     (stderr, so the report on stdout stays machine-readable) *)
  List.iter report_diag report.Abstraction.hints;
  if check_concrete then begin
    let direct =
      Abstraction.check_concrete ~budget ?pool ~ts ~hom ~formula:f ()
    in
    Format.printf "direct concrete check: %s@."
      (match direct with
      | Ok () -> "R̄(η) is a relative liveness property of lim(L)"
      | Error _ -> "R̄(η) is NOT a relative liveness property of lim(L)")
  end;
  emit_stats stats_before;
  match report.Abstraction.conclusion with
  | `Concrete_holds -> Ok ()
  | `Concrete_fails -> exit 1
  | `Unknown -> exit 3

let abstract_cmd =
  let doc = "verify through a hiding abstraction (Theorems 8.2/8.3)" in
  let term =
    Term.(
      const run_abstract $ system_arg $ formula_arg $ keep_arg $ eps_check
      $ max_states_arg $ timeout_arg $ bound_arg $ jobs_arg $ no_lint_arg
      $ stats_arg)
  in
  Cmd.v (Cmd.info "abstract" ~doc) term

(* --- impl (Theorem 5.1) --- *)

let samples_arg =
  let doc = "Number of strongly fair runs to sample." in
  Arg.(value & opt int 5 & info [ "samples" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed for run sampling." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let run_impl path formula_src samples seed max_states timeout bound jobs
    no_lint =
  let budget = Budget.create ?max_states ?timeout () in
  guarded @@ fun () ->
  with_jobs jobs @@ fun pool ->
  let* f = parse_formula formula_src in
  let* ts = load_and_lint ~budget ?bound ~formula:f ~no_lint path in
  let alpha = Nfa.alphabet ts in
  let system = Buchi.of_transition_system ts in
  let p = Relative.ltl alpha f in
  (match Relative.is_relative_liveness ~budget ?pool ~system p with
  | Ok () -> ()
  | Error w ->
      Format.printf
        "warning: %a is not a relative liveness property (doomed prefix \
         %a); Theorem 5.1 does not apply@."
        Rl_ltl.Formula.pp f (Word.pp alpha) w);
  let impl = Implement.construct ~budget ~system p in
  Format.printf "implementation: %d states (system had %d)@."
    (Buchi.states impl.Implement.implementation)
    (Buchi.states system);
  (match Implement.language_preserved ~budget ?pool ~system impl with
  | Ok () -> Format.printf "behaviors preserved: yes@."
  | Error x ->
      Format.printf "behaviors preserved: NO, witness %a@." (Word.pp alpha) x);
  let ok, generated =
    Implement.sample_fair_check (Rl_prelude.Prng.create seed) ~samples impl p
  in
  Format.printf "strongly fair runs sampled: %d, satisfying the property: %d@."
    generated ok;
  (match Implement.verify_fair_exact impl p with
  | Ok () ->
      Format.printf
        "exact (Streett) check: every strongly fair run satisfies the \
         property@."
  | Error run ->
      Format.printf "exact check FAILED; fair violating run:@.  %a@."
        (Rl_fair.Fair.pp_run impl.Implement.implementation)
        run);
  Ok ()

let impl_cmd =
  let doc = "build the Theorem 5.1 fair implementation and validate it" in
  let term =
    Term.(
      const run_impl $ system_arg $ formula_arg $ samples_arg $ seed_arg
      $ max_states_arg $ timeout_arg $ bound_arg $ jobs_arg $ no_lint_arg)
  in
  Cmd.v (Cmd.info "impl" ~doc) term

(* --- fair: model checking under strong fairness --- *)

let run_fair path formula_src bound jobs no_lint =
  guarded @@ fun () ->
  (* the Streett emptiness path is inherently sequential (nested SCC
     decompositions); the flag is accepted for interface uniformity *)
  with_jobs jobs @@ fun _pool ->
  let* f = parse_formula formula_src in
  let* ts = load_and_lint ?bound ~formula:f ~no_lint path in
  let alpha = Nfa.alphabet ts in
  let system = Buchi.of_transition_system ts in
  let neg =
    Rl_ltl.Translate.to_buchi_neg ~alphabet:alpha
      ~labeling:(Rl_ltl.Semantics.canonical alpha)
      f
  in
  match Rl_fair.Streett.fair_run_within system ~property:neg with
  | None ->
      Format.printf "FAIR-SATISFIED: every strongly fair run satisfies %a@."
        Rl_ltl.Formula.pp f;
      Ok ()
  | Some run ->
      Format.printf "FAIR-VIOLATED: a strongly fair run violates it:@.  %a@."
        (Rl_fair.Fair.pp_run system) run;
      Format.printf "  action word: %a@." (Lasso.pp alpha)
        (Rl_fair.Fair.label_lasso system run);
      exit 1

let fair_cmd =
  let doc =
    "decide whether every strongly fair run satisfies a property (exact, via \
     Streett fair emptiness)"
  in
  Cmd.v (Cmd.info "fair" ~doc)
    Term.(
      const run_fair $ system_arg $ formula_arg $ bound_arg $ jobs_arg
      $ no_lint_arg)

(* --- simple: simplicity of a hiding abstraction --- *)

let run_simple path keep max_states timeout bound jobs no_lint =
  let budget = Budget.create ?max_states ?timeout () in
  guarded @@ fun () ->
  (* the simplicity configuration search is a sequential fixpoint *)
  with_jobs jobs @@ fun _pool ->
  let* ts = load_and_lint ~budget ?bound ~keep ~no_lint path in
  let* hom =
    try Ok (Rl_hom.Hom.hiding ~concrete:(Nfa.alphabet ts) ~keep)
    with Invalid_argument m -> Error (Error.Internal m)
  in
  let verdict = Rl_hom.Hom.analyze ~budget hom ts in
  Format.printf "configurations examined: %d@."
    verdict.Rl_hom.Hom.configurations;
  match (verdict.Rl_hom.Hom.simple, verdict.Rl_hom.Hom.witness) with
  | true, _ ->
      Format.printf "SIMPLE: abstract relative-liveness verdicts transfer \
                     (Theorem 8.2)@.";
      Ok ()
  | false, Some w ->
      Format.printf "NOT SIMPLE: Definition 6.3 fails at the word %a@."
        (Word.pp (Nfa.alphabet ts))
        w;
      exit 1
  | false, None -> Error (Error.Internal "inconsistent analysis")

let simple_cmd =
  let doc = "decide simplicity (Definition 6.3) of a hiding abstraction" in
  Cmd.v (Cmd.info "simple" ~doc)
    Term.(
      const run_simple $ system_arg $ keep_arg $ max_states_arg $ timeout_arg
      $ bound_arg $ jobs_arg $ no_lint_arg)

(* --- decompose: safety/liveness classification --- *)

let run_decompose path formula_src max_states bound jobs no_lint =
  guarded @@ fun () ->
  with_jobs jobs @@ fun pool ->
  let* f = parse_formula formula_src in
  let* ts = load_and_lint ?bound ~formula:f ~no_lint path in
  let alpha = Nfa.alphabet ts in
  let b =
    Rl_ltl.Translate.to_buchi ~alphabet:alpha
      ~labeling:(Rl_ltl.Semantics.canonical alpha)
      f
  in
  Format.printf "property automaton: %d states@." (Buchi.states b);
  (* the three per-property checks are independent: fan them out. The
     decompose leg embeds a Kupferman–Vardi complementation, the one
     exponential step here; --max-states caps it, and Complement.Too_large
     surfaces through Error.of_exn as the exit-code-4 verdict — but only
     after the classification lines are printed, so its thunk hands back
     the exception as a value instead of abandoning its siblings. *)
  let checks =
    [
      (fun () -> `Bool (Classify.is_safety b));
      (fun () -> `Bool (Classify.is_liveness ?pool b));
      (fun () ->
        match Classify.decompose ?max_states ?pool b with
        | parts -> `Decomposition (Ok parts)
        | exception e -> `Decomposition (Error e));
    ]
  in
  let results =
    match pool with
    | Some p when Pool.size p > 1 -> Pool.parfan p checks
    | _ -> List.map (fun check -> check ()) checks
  in
  match results with
  | [ `Bool safety; `Bool liveness; `Decomposition parts ] ->
      Format.printf "safety property: %b@." safety;
      Format.printf "liveness property: %b@." liveness;
      let s, l = match parts with Ok parts -> parts | Error e -> raise e in
      Format.printf
        "decomposition (Alpern–Schneider): safety closure %d states, liveness \
         part %d states@."
        (Buchi.states s) (Buchi.states l);
      Ok ()
  | _ -> assert false

let decompose_cmd =
  let doc = "classify a property as safety/liveness and decompose it" in
  Cmd.v
    (Cmd.info "decompose" ~doc)
    Term.(
      const run_decompose $ system_arg $ formula_arg $ max_states_arg
      $ bound_arg $ jobs_arg $ no_lint_arg)

(* --- compose: parallel composition of systems --- *)

let systems_arg =
  let doc = "System files to compose (two or more)." in
  Arg.(non_empty & pos_all file [] & info [] ~docv:"SYSTEM..." ~doc)

let run_compose paths bound =
  guarded @@ fun () ->
  let* systems =
    List.fold_left
      (fun acc path ->
        let* acc = acc in
        let* ts = load_system ?bound path in
        Ok (ts :: acc))
      (Ok []) paths
  in
  match List.rev systems with
  | [] | [ _ ] -> Error (Error.Internal "need at least two systems")
  | systems ->
      let composed = Rl_compose.Compose.parallel_many systems in
      print_string (Ts_format.print_ts composed);
      Ok ()

let compose_cmd =
  let doc =
    "compose systems in parallel (synchronizing on shared action names) and \
     print the result as a transition system"
  in
  Cmd.v (Cmd.info "compose" ~doc)
    Term.(const run_compose $ systems_arg $ bound_arg)

(* --- lint: the full static-diagnostics registry --- *)

let lint_formula_arg =
  let doc = "Also lint this PLTL formula against the system." in
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "formula" ] ~docv:"FORMULA" ~doc)

let lint_keep_arg =
  let doc =
    "Also lint the hiding abstraction that keeps the comma-separated \
     $(docv) observable (enables the deep simplicity / maximal-word \
     passes)."
  in
  Arg.(
    value & opt (some (list string)) None & info [ "keep" ] ~docv:"ACTIONS" ~doc)

let format_arg =
  let doc = "Output format: $(docv) is one of 'human', 'json', 'sarif'." in
  Arg.(
    value
    & opt (Arg.enum [ ("human", `Human); ("json", `Json); ("sarif", `Sarif) ]) `Human
    & info [ "format" ] ~docv:"FORMAT" ~doc)

(* SYSTEM is optional here (unlike the deciders): --list-passes needs none *)
let lint_system_arg =
  let doc = "System file: a transition system, or a Petri net if it ends in .pn." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"SYSTEM" ~doc)

let fix_arg =
  let doc =
    "Apply the machine-applicable fixes (e.g. dead-transition removal, \
     RL501) to the model file and rewrite it in place. Idempotent; refuses \
     conflicting edits and any rewrite after which the model no longer \
     parses."
  in
  Arg.(value & flag & info [ "fix" ] ~doc)

let baseline_arg =
  let doc =
    "Suppress the findings recorded in the baseline file $(docv) and fail \
     (exit 2) if any new finding remains — the CI gate. Record the file \
     with --write-baseline."
  in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let write_baseline_arg =
  let doc =
    "Record the current findings as the baseline file $(docv) and exit 0."
  in
  Arg.(
    value & opt (some string) None & info [ "write-baseline" ] ~docv:"FILE" ~doc)

let list_passes_arg =
  let doc = "List the registered lint passes and exit." in
  Arg.(value & flag & info [ "list-passes" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let run_lint path formula_src keep format max_states timeout bound fix
    baseline_file write_baseline list_passes =
  (* only an explicit limit becomes the deep-pass budget; otherwise the
     passes fall back to their own internal cap *)
  let budget =
    match (max_states, timeout) with
    | None, None -> None
    | _ -> Some (Budget.create ?max_states ?timeout ())
  in
  guarded @@ fun () ->
  if list_passes then begin
    List.iter
      (fun p ->
        Format.printf "%-22s %-10s %s%s@." p.Lint.name
          (if p.Lint.deep then "deep" else "pre-flight")
          (String.concat "," p.Lint.codes)
          (if p.Lint.name = "dead-transitions" then " (fixable)" else ""))
      Lint.passes;
    Ok ()
  end
  else
    let* path =
      match path with
      | Some p -> Ok p
      | None ->
          Error
            (Error.Internal
               "a SYSTEM file is required unless --list-passes is given")
    in
    let parse_diags = ref [] in
    let collect d = parse_diags := d :: !parse_diags in
    (* the raw source backs the RL501 line spans and --fix; Petri nets
       have no line-per-transition correspondence *)
    let src =
      if Filename.check_suffix path ".pn" then None else Some (read_file path)
    in
    let locs =
      match src with
      | None -> []
      | Some text ->
          List.map
            (fun (t, l) ->
              (t, (l.Ts_format.line, l.Ts_format.start_col, l.Ts_format.end_col)))
            (Ts_format.transition_locs text)
    in
    let* sys = Ts_format.load_result ~on_diagnostic:collect ?budget ?bound path in
    let* formula =
      match formula_src with
      | None -> Ok None
      | Some s -> Result.map Option.some (parse_formula s)
    in
    let diags =
      Lint.run
        {
          Lint.empty with
          file = Some path;
          parse = List.rev !parse_diags;
          system = Some sys;
          formula;
          keep;
          budget;
          locs;
        }
    in
    if fix then begin
      match src with
      | None -> Error (Error.Internal "--fix supports only .ts models")
      | Some text -> (
          let* edits =
            Result.map_error
              (fun m -> Error.Internal m)
              (Rl_analysis.Fix.plan diags)
          in
          if edits = [] then begin
            Format.printf "no machine-applicable fixes@.";
            Ok ()
          end
          else
            let fixed = Rl_analysis.Fix.apply ~src:text edits in
            match Ts_format.parse_ts_result ~file:path fixed with
            | Error e ->
                Error
                  (Error.Internal
                     (Format.asprintf
                        "refusing --fix: the rewritten model no longer \
                         parses (%a)"
                        Error.pp e))
            | Ok _ ->
                write_file path fixed;
                Format.printf "%s: applied %d fix%s@." path (List.length edits)
                  (if List.length edits = 1 then "" else "es");
                Ok ())
    end
    else
      match write_baseline with
      | Some bpath ->
          write_file bpath (Rl_analysis.Baseline.render diags);
          Format.printf "%s: recorded %d finding%s@." bpath (List.length diags)
            (if List.length diags = 1 then "" else "s");
          Ok ()
      | None ->
          let* diags, suppressed =
            match baseline_file with
            | None -> Ok (diags, 0)
            | Some bpath ->
                let* fps =
                  Result.map_error
                    (fun m -> Error.Internal (bpath ^ ": " ^ m))
                    (Rl_analysis.Baseline.parse (read_file bpath))
                in
                Ok (Rl_analysis.Baseline.filter ~baseline:fps diags)
          in
          (match format with
          | `Human ->
              List.iter
                (fun d ->
                  Format.printf "%a@." Diagnostic.pp d;
                  if d.Diagnostic.fix <> None then
                    Format.printf "%a@." Diagnostic.pp_fix d)
                diags;
              Format.printf "%s%s@."
                (Diagnostic.summary diags)
                (if suppressed > 0 then
                   Printf.sprintf " (%d suppressed by baseline)" suppressed
                 else "")
          | `Json -> print_string (Diagnostic.report_json diags)
          | `Sarif -> print_string (Diagnostic.report_sarif ~rules:Lint.rules diags));
          (* with a baseline, any unsuppressed finding is new and fails
             the gate; without one, only Errors do *)
          let failing =
            if baseline_file <> None then diags <> []
            else List.exists Diagnostic.is_error diags
          in
          if failing then exit 2 else Ok ()

let lint_cmd =
  let doc =
    "run the static-diagnostics registry on a system (and optionally a \
     formula and an abstraction) without checking anything"
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run_lint $ lint_system_arg $ lint_formula_arg $ lint_keep_arg
      $ format_arg $ max_states_arg $ timeout_arg $ bound_arg $ fix_arg
      $ baseline_arg $ write_baseline_arg $ list_passes_arg)

(* --- info / dot --- *)

let run_info path bound =
  guarded @@ fun () ->
  let* ts = load_system ?bound path in
  Format.printf "states: %d@." (Nfa.states ts);
  Format.printf "alphabet (%d): %a@."
    (Alphabet.size (Nfa.alphabet ts))
    Alphabet.pp (Nfa.alphabet ts);
  Format.printf "transitions: %d@." (List.length (Nfa.transitions ts));
  let deadlocks =
    List.filter
      (fun q ->
        List.for_all
          (fun a -> Nfa.successors ts q a = [])
          (Alphabet.symbols (Nfa.alphabet ts)))
      (List.init (Nfa.states ts) Fun.id)
  in
  Format.printf "deadlock states: %d@." (List.length deadlocks);
  Ok ()

let info_cmd =
  let doc = "print system statistics" in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run_info $ system_arg $ bound_arg)

let run_dot path bound =
  guarded @@ fun () ->
  let* ts = load_system ?bound path in
  print_string (Nfa.to_dot ts);
  Ok ()

let dot_cmd =
  let doc = "emit the system as a GraphViz digraph" in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run_dot $ system_arg $ bound_arg)

let exits =
  [
    Cmd.Exit.info 0 ~doc:"the property holds.";
    Cmd.Exit.info 1 ~doc:"the property fails; a certified witness was printed.";
    Cmd.Exit.info 2 ~doc:"usage, input, or internal error.";
    Cmd.Exit.info 3
      ~doc:"the analysis completed but no conclusion transfers (abstract).";
    Cmd.Exit.info 4
      ~doc:
        "a resource budget (--max-states / --timeout) was exhausted; a \
         partial-progress report was printed.";
  ]

let main =
  let doc = "relative liveness and behavior abstraction checking" in
  let info = Cmd.info "rlcheck" ~version:"1.0.0" ~doc ~exits in
  Cmd.group info
    [
      check_cmd "sat" `Sat "classical satisfaction Lω ⊆ P";
      check_cmd "rl" `Rl "relative liveness (Definition 4.1)";
      check_cmd "rs" `Rs "relative safety (Definition 4.2)";
      abstract_cmd;
      impl_cmd;
      fair_cmd;
      simple_cmd;
      lint_cmd;
      decompose_cmd;
      compose_cmd;
      info_cmd;
      dot_cmd;
    ]

(* Last-resort crash handler: nothing escapes as an uncaught exception.
   [~catch:false] lets exceptions out of cmdliner so the contract above
   is kept even for defects guarded code did not anticipate. *)
let () =
  (* engine GC defaults (or the RLCHECK_GC override) for the main domain;
     Pool workers apply the same tuning when they spawn *)
  Stats.gc_tune ();
  match Cmd.eval ~catch:false main with
  (* cmdliner reports its own CLI-parsing errors with 124; fold them
     into the documented usage exit *)
  | 124 -> exit 2
  | code -> exit code
  | exception Budget.Exhausted e ->
      Format.eprintf "rlcheck: %a@." Budget.pp_exhaustion e;
      exit 4
  | exception Complement.Too_large limit ->
      Format.eprintf
        "rlcheck: state limit %d reached during Büchi complementation@." limit;
      exit 4
  | exception e ->
      Format.eprintf "rlcheck: internal error: %s@." (Printexc.to_string e);
      exit 2
